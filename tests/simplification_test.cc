// Tests for the simplification machinery and OSRSucceeds (Algorithm 2) —
// including the exact chains of Example 3.5 and the dichotomy
// classifications the paper states for its named FD sets.

#include <gtest/gtest.h>

#include "common/random.h"
#include "srepair/osr_succeeds.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

TEST(SimplificationTest, TrivialTermination) {
  SimplificationStep step = NextSimplification(FdSet());
  EXPECT_EQ(step.kind, SimplificationKind::kTrivialTermination);
  ParsedFdSet trivial = ParseFdSetInferSchemaOrDie("A B -> A");
  EXPECT_EQ(NextSimplification(trivial.fds).kind,
            SimplificationKind::kTrivialTermination);
}

TEST(SimplificationTest, PriorityOrderCommonLhsFirst) {
  // Office ∆ has a common lhs (facility) — taken before anything else.
  ParsedFdSet office = OfficeFds();
  SimplificationStep step = NextSimplification(office.fds);
  EXPECT_EQ(step.kind, SimplificationKind::kCommonLhs);
  AttrId facility = *office.schema.AttributeId("facility");
  EXPECT_EQ(step.removed, AttrSet::Of({facility}));
}

TEST(SimplificationTest, ConsensusAfterCommonLhs) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("{} -> A; B -> C");
  SimplificationStep step = NextSimplification(parsed.fds);
  EXPECT_EQ(step.kind, SimplificationKind::kConsensus);
  EXPECT_EQ(step.removed.size(), 1);
}

TEST(SimplificationTest, MarriageLast) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  SimplificationStep step = NextSimplification(parsed.fds);
  EXPECT_EQ(step.kind, SimplificationKind::kLhsMarriage);
  EXPECT_EQ(step.removed, AttrSet::Of({0, 1}));  // A and B
  // Residual is the consensus FD {} -> C.
  EXPECT_EQ(step.after.size(), 1);
  EXPECT_TRUE(step.after.fds()[0].IsConsensus());
}

TEST(SimplificationTest, Stuck) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  SimplificationStep step = NextSimplification(parsed.fds);
  EXPECT_EQ(step.kind, SimplificationKind::kStuck);
  EXPECT_EQ(step.after, step.before);
}

// Example 3.5, chain 1: the running example reduces via
// common lhs, consensus, common lhs, consensus to {}.
TEST(OsrSucceedsTest, Example35OfficeChain) {
  ParsedFdSet office = OfficeFds();
  OsrTrace trace = RunOsrSucceeds(office.fds);
  EXPECT_TRUE(trace.succeeds);
  ASSERT_EQ(trace.steps.size(), 5u);
  EXPECT_EQ(trace.steps[0].kind, SimplificationKind::kCommonLhs);
  EXPECT_EQ(trace.steps[1].kind, SimplificationKind::kConsensus);
  EXPECT_EQ(trace.steps[2].kind, SimplificationKind::kCommonLhs);
  EXPECT_EQ(trace.steps[3].kind, SimplificationKind::kConsensus);
  EXPECT_EQ(trace.steps[4].kind, SimplificationKind::kTrivialTermination);
}

// Example 3.5, chain 2: ∆A↔B→C reduces via lhs marriage then consensus.
TEST(OsrSucceedsTest, Example35MarriageChain) {
  OsrTrace trace = RunOsrSucceeds(DeltaAKeyBToC().fds);
  EXPECT_TRUE(trace.succeeds);
  ASSERT_EQ(trace.steps.size(), 3u);
  EXPECT_EQ(trace.steps[0].kind, SimplificationKind::kLhsMarriage);
  EXPECT_EQ(trace.steps[1].kind, SimplificationKind::kConsensus);
  EXPECT_EQ(trace.steps[2].kind, SimplificationKind::kTrivialTermination);
}

// Example 3.5, chain 3: ∆1 of Example 3.1 — marriage, consensus,
// common lhs, consensus, consensus.
TEST(OsrSucceedsTest, Example35SsnChain) {
  OsrTrace trace = RunOsrSucceeds(Example31Ssn().fds);
  EXPECT_TRUE(trace.succeeds);
  ASSERT_EQ(trace.steps.size(), 6u);
  EXPECT_EQ(trace.steps[0].kind, SimplificationKind::kLhsMarriage);
  EXPECT_EQ(trace.steps[1].kind, SimplificationKind::kConsensus);
  EXPECT_EQ(trace.steps[2].kind, SimplificationKind::kCommonLhs);
  EXPECT_EQ(trace.steps[3].kind, SimplificationKind::kConsensus);
  EXPECT_EQ(trace.steps[4].kind, SimplificationKind::kConsensus);
  EXPECT_EQ(trace.steps[5].kind, SimplificationKind::kTrivialTermination);
}

// Example 3.5's negative cases and Table 1.
TEST(OsrSucceedsTest, HardSetsFail) {
  EXPECT_FALSE(OsrSucceeds(DeltaAtoBtoC().fds));
  EXPECT_FALSE(OsrSucceeds(DeltaAtoCfromB().fds));
  EXPECT_FALSE(OsrSucceeds(DeltaABtoCtoB().fds));
  EXPECT_FALSE(OsrSucceeds(DeltaTriangle().fds));
  EXPECT_FALSE(OsrSucceeds(DeltaTwoDisjoint().fds));
  EXPECT_FALSE(OsrSucceeds(Delta3Email().fds));
  EXPECT_FALSE(OsrSucceeds(Delta0Purchase().fds));
  EXPECT_FALSE(OsrSucceeds(Example42Hard().fds));
  EXPECT_FALSE(OsrSucceeds(Example47Zip().fds));
}

TEST(OsrSucceedsTest, TractableSetsSucceed) {
  EXPECT_TRUE(OsrSucceeds(OfficeFds().fds));
  EXPECT_TRUE(OsrSucceeds(DeltaAKeyBToC().fds));
  EXPECT_TRUE(OsrSucceeds(Example31Ssn().fds));
  EXPECT_TRUE(OsrSucceeds(Delta4Buyer().fds));
  EXPECT_TRUE(OsrSucceeds(Example47Passport().fds));
  EXPECT_TRUE(OsrSucceeds(FdSet()));
}

// Corollary 3.6: every chain FD set succeeds.
TEST(OsrSucceedsTest, ChainsAlwaysSucceed) {
  Rng rng(4242);
  Schema schema = Schema::Anonymous(6);
  for (int trial = 0; trial < 100; ++trial) {
    // Build a random chain: nested lhs's X1 ⊆ X2 ⊆ ... with random rhs.
    AttrSet lhs;
    std::vector<Fd> fds;
    int levels = 1 + static_cast<int>(rng.UniformUint64(4));
    for (int level = 0; level < levels; ++level) {
      if (rng.Bernoulli(0.7)) {
        lhs = lhs.With(static_cast<AttrId>(rng.UniformUint64(6)));
      }
      fds.emplace_back(lhs, static_cast<AttrId>(rng.UniformUint64(6)));
    }
    FdSet delta = FdSet::FromFds(fds);
    ASSERT_TRUE(delta.IsChain());
    EXPECT_TRUE(OsrSucceeds(delta)) << delta.ToString();
  }
}

// The stuck residual never admits a simplification (sanity of the trace).
TEST(OsrSucceedsTest, StuckResidualIsStuck) {
  for (const NamedFdSet& named : AllNamedFdSets()) {
    OsrTrace trace = RunOsrSucceeds(named.parsed.fds);
    if (!trace.succeeds) {
      SimplificationStep step = NextSimplification(trace.stuck_fds);
      EXPECT_EQ(step.kind, SimplificationKind::kStuck) << named.name;
    }
  }
}

TEST(OsrSucceedsTest, TraceRendering) {
  ParsedFdSet office = OfficeFds();
  std::string rendered = RunOsrSucceeds(office.fds).ToString(office.schema);
  EXPECT_NE(rendered.find("common lhs"), std::string::npos);
  EXPECT_NE(rendered.find("consensus"), std::string::npos);
  EXPECT_NE(rendered.find("true"), std::string::npos);
}

// Random FD sets: the trace always terminates with a decisive step, and
// every intermediate step removes at least one attribute.
class OsrRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OsrRandomTest, TracesWellFormed) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Fd> fds;
    int count = 1 + static_cast<int>(rng.UniformUint64(5));
    for (int f = 0; f < count; ++f) {
      fds.emplace_back(AttrSet::FromBits(rng.Next() & 0x3f),
                       static_cast<AttrId>(rng.UniformUint64(6)));
    }
    OsrTrace trace = RunOsrSucceeds(FdSet::FromFds(fds));
    ASSERT_FALSE(trace.steps.empty());
    SimplificationKind last = trace.steps.back().kind;
    EXPECT_TRUE(last == SimplificationKind::kTrivialTermination ||
                last == SimplificationKind::kStuck);
    for (size_t s = 0; s + 1 < trace.steps.size(); ++s) {
      EXPECT_FALSE(trace.steps[s].removed.empty());
      EXPECT_FALSE(
          trace.steps[s].after.Attrs().Intersects(trace.steps[s].removed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OsrRandomTest,
                         ::testing::Values(1001, 2002, 3003, 4004));

}  // namespace
}  // namespace fdrepair
