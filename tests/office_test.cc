// The Figure 1 / Examples 2.1–2.3 regression suite: every number the paper
// states about the running example, checked end to end.

#include <gtest/gtest.h>

#include "srepair/planner.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/planner.h"
#include "workloads/office.h"

namespace fdrepair {
namespace {

class OfficeTest : public ::testing::Test {
 protected:
  OfficeExample office_ = MakeOfficeExample();
};

TEST_F(OfficeTest, TableShapeMatchesFigure1a) {
  EXPECT_EQ(office_.table.num_tuples(), 4);
  EXPECT_EQ(office_.table.ValueText(0, 0), "HQ");
  EXPECT_EQ(office_.table.ValueText(0, 3), "Paris");
  EXPECT_EQ(office_.table.ValueText(3, 1), "B35");
  EXPECT_DOUBLE_EQ(office_.table.weight(0), 2);
  EXPECT_DOUBLE_EQ(office_.table.weight(1), 1);
  // Example 2.1: S2 duplicate free and unweighted; S1 not unweighted.
  EXPECT_TRUE(office_.subset_s2.IsDuplicateFree());
  EXPECT_TRUE(office_.subset_s2.IsUnweighted());
  EXPECT_FALSE(office_.subset_s1.IsUnweighted());
}

TEST_F(OfficeTest, TViolatesButRepairsSatisfy) {
  EXPECT_FALSE(Satisfies(office_.table, office_.fds));
  EXPECT_TRUE(Satisfies(office_.subset_s1, office_.fds));
  EXPECT_TRUE(Satisfies(office_.subset_s2, office_.fds));
  EXPECT_TRUE(Satisfies(office_.subset_s3, office_.fds));
  EXPECT_TRUE(Satisfies(office_.update_u1, office_.fds));
  EXPECT_TRUE(Satisfies(office_.update_u2, office_.fds));
  EXPECT_TRUE(Satisfies(office_.update_u3, office_.fds));
}

TEST_F(OfficeTest, Example23Distances) {
  EXPECT_DOUBLE_EQ(DistSubOrDie(office_.subset_s1, office_.table), 2);
  EXPECT_DOUBLE_EQ(DistSubOrDie(office_.subset_s2, office_.table), 2);
  EXPECT_DOUBLE_EQ(DistSubOrDie(office_.subset_s3, office_.table), 3);
  EXPECT_DOUBLE_EQ(DistUpdOrDie(office_.update_u1, office_.table), 2);
  EXPECT_DOUBLE_EQ(DistUpdOrDie(office_.update_u2, office_.table), 3);
  EXPECT_DOUBLE_EQ(DistUpdOrDie(office_.update_u3, office_.table), 4);
}

TEST_F(OfficeTest, S1AndS2AreOptimalSRepairs) {
  auto result = ComputeSRepair(office_.fds, office_.table);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->optimal);
  EXPECT_EQ(result->algorithm, SRepairAlgorithm::kOptSRepair);
  EXPECT_DOUBLE_EQ(result->distance, 2);  // = dist(S1) = dist(S2)
  // S3 is 1.5-optimal, not optimal.
  EXPECT_DOUBLE_EQ(DistSubOrDie(office_.subset_s3, office_.table) /
                       result->distance,
                   1.5);
}

TEST_F(OfficeTest, U1IsOptimalURepair) {
  auto result = ComputeURepair(office_.fds, office_.table);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->optimal);
  EXPECT_DOUBLE_EQ(result->distance,
                   DistUpdOrDie(office_.update_u1, office_.table));
}

TEST_F(OfficeTest, VerdictsMatchExample35AndExample47) {
  // Example 3.5: the office ∆ passes OSRSucceeds.
  SRepairVerdict verdict = ClassifySRepair(office_.fds);
  EXPECT_TRUE(verdict.polynomial);
  EXPECT_FALSE(verdict.hard_class.has_value());
  // Example 4.7: hence an optimal U-repair is polynomial too (common lhs).
  auto plan = PlanURepair(office_.fds);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->complexity, URepairComplexity::kPolynomial);
  ASSERT_EQ(plan->components.size(), 1u);
  EXPECT_EQ(plan->components[0].route, URepairRoute::kCommonLhsExact);
}

TEST_F(OfficeTest, DeltaIsAChain) {
  EXPECT_TRUE(office_.fds.IsChain());  // Example 2.2
}

}  // namespace
}  // namespace fdrepair
