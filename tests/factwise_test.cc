// Tests for the fact-wise reductions (Lemmas A.14–A.18): injectivity and
// pair-consistency preservation — the two properties that make them strict
// reductions (Lemma 3.7) — checked on the paper's example sets and on
// random stuck FD sets.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "reductions/factwise.h"
#include "srepair/osr_succeeds.h"
#include "srepair/srepair_exact.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

// The source gadget FD set for a classification.
FdSet GadgetFds(HardGadget gadget) {
  switch (gadget) {
    case HardGadget::kAtoCfromB:
      return DeltaAtoCfromB().fds;
    case HardGadget::kAtoBtoC:
      return DeltaAtoBtoC().fds;
    case HardGadget::kTriangle:
      return DeltaTriangle().fds;
    case HardGadget::kABtoCtoB:
      return DeltaABtoCtoB().fds;
  }
  FDR_CHECK(false);
  return FdSet();
}

// Runs the Lemma 3.7 property check for one stuck FD set: map random gadget
// tuples, assert injectivity and pairwise consistency preservation.
void CheckFactwiseProperties(const Schema& schema, const FdSet& stuck,
                             uint64_t seed) {
  auto classification = ClassifyNonSimplifiable(stuck);
  ASSERT_TRUE(classification.ok()) << stuck.ToString();
  FdSet source_fds = GadgetFds(classification->gadget);
  Schema source_schema = Schema::Anonymous(3);

  Rng rng(seed);
  // A small universe of gadget tuples (values from a 3-symbol domain makes
  // agreements frequent).
  std::vector<std::vector<std::string>> tuples;
  for (int i = 0; i < 40; ++i) {
    tuples.push_back({"x" + std::to_string(rng.UniformUint64(3)),
                      "y" + std::to_string(rng.UniformUint64(3)),
                      "z" + std::to_string(rng.UniformUint64(3))});
  }

  // Build source and mapped tables in parallel.
  Table source(source_schema);
  Table mapped(schema);
  std::set<std::vector<std::string>> seen_sources;
  std::set<std::vector<std::string>> seen_images;
  int distinct = 0;
  for (const auto& tuple : tuples) {
    auto image = MapGadgetTuple(*classification, stuck, schema, tuple[0],
                                tuple[1], tuple[2]);
    ASSERT_TRUE(image.ok()) << image.status();
    bool new_source = seen_sources.insert(tuple).second;
    bool new_image = seen_images.insert(*image).second;
    // Injectivity: a new source tuple yields a new image and vice versa.
    EXPECT_EQ(new_source, new_image) << stuck.ToString();
    if (new_source) ++distinct;
    source.AddTuple(tuple);
    ASSERT_TRUE(mapped.AddTupleWithId(source.id(source.num_tuples() - 1),
                                      *image, 1.0)
                    .ok());
  }
  ASSERT_GT(distinct, 5);

  // Pairwise consistency preservation.
  for (int i = 0; i < source.num_tuples(); ++i) {
    for (int j = i + 1; j < source.num_tuples(); ++j) {
      bool source_ok =
          PairConsistent(source.tuple(i), source.tuple(j), source_fds);
      bool mapped_ok = PairConsistent(mapped.tuple(i), mapped.tuple(j), stuck);
      EXPECT_EQ(source_ok, mapped_ok)
          << stuck.ToString() << "\n source pair (" << i << ", " << j << ")";
    }
  }
}

TEST(FactwiseTest, Example38ClassesPreserveConsistency) {
  for (int fd_class = 1; fd_class <= 5; ++fd_class) {
    ParsedFdSet parsed = Example38Class(fd_class);
    CheckFactwiseProperties(parsed.schema, parsed.fds.WithoutTrivial(),
                            1000 + fd_class);
  }
}

TEST(FactwiseTest, Table1SelfReductions) {
  // The gadget sets are stuck; reducing them onto themselves must work too.
  for (const ParsedFdSet& parsed :
       {DeltaAtoBtoC(), DeltaAtoCfromB(), DeltaABtoCtoB(), DeltaTriangle()}) {
    CheckFactwiseProperties(parsed.schema, parsed.fds, 77);
  }
}

TEST(FactwiseTest, NamedHardSets) {
  for (const NamedFdSet& named : AllNamedFdSets()) {
    OsrTrace trace = RunOsrSucceeds(named.parsed.fds);
    if (trace.succeeds) continue;
    CheckFactwiseProperties(named.parsed.schema, trace.stuck_fds, 55);
  }
}

class FactwisePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FactwisePropertyTest, RandomStuckSets) {
  Rng rng(GetParam());
  Schema schema = Schema::Anonymous(5);
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 12; ++trial) {
    std::vector<Fd> fds;
    int count = 2 + static_cast<int>(rng.UniformUint64(4));
    for (int f = 0; f < count; ++f) {
      fds.emplace_back(AttrSet::FromBits(rng.Next() & 0x1f),
                       static_cast<AttrId>(rng.UniformUint64(5)));
    }
    OsrTrace trace = RunOsrSucceeds(FdSet::FromFds(fds));
    if (trace.succeeds) continue;
    ++checked;
    CheckFactwiseProperties(schema, trace.stuck_fds, rng.Next());
  }
  EXPECT_GE(checked, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactwisePropertyTest,
                         ::testing::Values(211, 223, 227));

// Lemma 3.7 end to end: a fact-wise reduction is a *strict* reduction, so
// the optimal S-repair distance of a gadget table equals the optimal
// S-repair distance of its image (identifiers and weights carry over).
TEST(FactwiseTest, StrictReductionPreservesOptimalDistance) {
  Rng rng(2027);
  for (int fd_class = 1; fd_class <= 5; ++fd_class) {
    ParsedFdSet target = Example38Class(fd_class);
    FdSet stuck = target.fds.WithoutTrivial();
    auto classification = ClassifyNonSimplifiable(stuck);
    ASSERT_TRUE(classification.ok());
    FdSet source_fds = GadgetFds(classification->gadget);
    for (int trial = 0; trial < 4; ++trial) {
      Table source(Schema::Anonymous(3));
      int n = 6 + static_cast<int>(rng.UniformUint64(5));
      for (int i = 0; i < n; ++i) {
        source.AddTuple({"x" + std::to_string(rng.UniformUint64(3)),
                         "y" + std::to_string(rng.UniformUint64(3)),
                         "z" + std::to_string(rng.UniformUint64(3))},
                        1.0 + static_cast<double>(rng.UniformUint64(3)));
      }
      auto mapped = ApplyClassReduction(*classification, stuck, target.schema,
                                        source);
      ASSERT_TRUE(mapped.ok()) << mapped.status();
      auto source_repair = OptSRepairExact(source_fds, source, 64);
      auto mapped_repair = OptSRepairExact(stuck, *mapped, 64);
      ASSERT_TRUE(source_repair.ok() && mapped_repair.ok());
      EXPECT_NEAR(DistSubOrDie(*source_repair, source),
                  DistSubOrDie(*mapped_repair, *mapped), 1e-9)
          << "class " << fd_class << " trial " << trial;
    }
  }
}

TEST(FactwiseTest, AttributeElimination) {
  // Lemma A.18 on the office set: eliminate `facility`, map, and verify
  // pairwise consistency transfer between ∆ − facility and ∆.
  ParsedFdSet office = OfficeFds();
  AttrId facility = *office.schema.AttributeId("facility");
  FdSet reduced = office.fds.MinusAttrs(AttrSet::Of({facility}));

  Table source(office.schema);
  Rng rng(99);
  for (int i = 0; i < 30; ++i) {
    source.AddTuple({"f" + std::to_string(rng.UniformUint64(2)),
                     "r" + std::to_string(rng.UniformUint64(2)),
                     std::to_string(rng.UniformUint64(2)),
                     "c" + std::to_string(rng.UniformUint64(2))});
  }
  Table mapped =
      ApplyAttributeEliminationReduction(source, AttrSet::Of({facility}));
  ASSERT_EQ(mapped.num_tuples(), source.num_tuples());
  for (int i = 0; i < source.num_tuples(); ++i) {
    EXPECT_EQ(mapped.ValueText(i, facility), kFactwiseConstant);
    for (int j = i + 1; j < source.num_tuples(); ++j) {
      EXPECT_EQ(PairConsistent(source.tuple(i), source.tuple(j), reduced),
                PairConsistent(mapped.tuple(i), mapped.tuple(j), office.fds));
    }
  }
}

}  // namespace
}  // namespace fdrepair
