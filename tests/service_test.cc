// The serving layer: canonicalized cache keys, bit-identical cached
// replays, LRU eviction, single-flight dedup, and admission control
// (kDeadlineExceeded / kUnavailable instead of stalling).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "catalog/fd_parser.h"
#include "service/repair_service.h"
#include "srepair/planner.h"
#include "srepair/solver_backend.h"
#include "storage/table_hash.h"
#include "storage/table_io.h"
#include "urepair/planner.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

using std::chrono::milliseconds;

/// An in-memory deep copy with its own Schema and ValuePool (and a
/// different relation name): only *content* matches the source. CSV is not
/// used here because weight printing is 6-significant-digit lossy.
Table CopyContent(const Table& src) {
  std::vector<std::string> attrs;
  for (int c = 0; c < src.schema().arity(); ++c) {
    attrs.push_back(src.schema().AttributeName(c));
  }
  Table out(Schema::MakeOrDie("Copy", attrs));
  for (int row = 0; row < src.num_tuples(); ++row) {
    std::vector<std::string> values;
    for (int c = 0; c < src.schema().arity(); ++c) {
      values.push_back(src.ValueText(row, c));
    }
    EXPECT_TRUE(out.AddTupleWithId(src.id(row), values, src.weight(row)).ok());
  }
  return out;
}

RepairRequest Request(RepairMode mode, const FdSet& fds,
                      const Table* table) {
  RepairRequest request;
  request.mode = mode;
  request.fds = fds;
  request.table = table;
  return request;
}

void ExpectSameRepair(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  for (int row = 0; row < a.num_tuples(); ++row) {
    EXPECT_EQ(a.id(row), b.id(row)) << row;
    EXPECT_EQ(a.weight(row), b.weight(row)) << row;
    for (int c = 0; c < a.schema().arity(); ++c) {
      EXPECT_EQ(a.ValueText(row, c), b.ValueText(row, c))
          << "row " << row << " col " << c;
    }
  }
}

TEST(TableHashTest, EqualContentHashesEqualAcrossPools) {
  ParsedFdSet parsed = OfficeFds();
  Table a = ScalingFamilyTable(parsed, 64, 7);
  Table b = CopyContent(a);
  EXPECT_EQ(TableContentHash(a), TableContentHash(b));
}

TEST(TableHashTest, ValueWeightAndIdChangesChangeTheHash) {
  Table base(Schema::MakeOrDie("T", {"a", "b"}));
  base.AddTuple({"x", "y"}, 1.0);
  uint64_t h0 = TableContentHash(base);

  Table value_differs(Schema::MakeOrDie("T", {"a", "b"}));
  value_differs.AddTuple({"x", "z"}, 1.0);
  EXPECT_NE(TableContentHash(value_differs), h0);

  Table weight_differs(Schema::MakeOrDie("T", {"a", "b"}));
  weight_differs.AddTuple({"x", "y"}, 2.0);
  EXPECT_NE(TableContentHash(weight_differs), h0);

  Table id_differs(Schema::MakeOrDie("T", {"a", "b"}));
  ASSERT_TRUE(id_differs.AddTupleWithId(7, {"x", "y"}, 1.0).ok());
  EXPECT_NE(TableContentHash(id_differs), h0);

  // Concatenation framing: ("xy", "") must not collide with ("x", "y").
  Table framing(Schema::MakeOrDie("T", {"a", "b"}));
  framing.AddTuple({"xy", ""}, 1.0);
  EXPECT_NE(TableContentHash(framing), h0);
}

TEST(CanonicalCoverTest, NormalizesPhrasingsAndStaysEquivalent) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  FdSet minimal = ParseFdSetOrDie(schema, "A -> B; B -> C");
  // Inflated lhs (A B -> C has extraneous B) and an implied FD (A -> C).
  FdSet inflated = ParseFdSetOrDie(schema, "A -> B; B -> C; A B -> C");
  FdSet implied = ParseFdSetOrDie(schema, "A -> B; B -> C; A -> C");
  EXPECT_EQ(minimal.CanonicalCover(), minimal);
  EXPECT_EQ(inflated.CanonicalCover(), minimal);
  EXPECT_EQ(implied.CanonicalCover(), minimal);
  EXPECT_TRUE(inflated.CanonicalCover().EquivalentTo(inflated));

  // A cyclic equivalence class must keep its cycle (equivalence, not just
  // minimality, is the load-bearing property).
  FdSet cycle = ParseFdSetOrDie(schema, "A -> B; B -> C; C -> A");
  EXPECT_TRUE(cycle.CanonicalCover().EquivalentTo(cycle));
}

TEST(RepairServiceTest, SubsetHitAndMissAreBitIdenticalToPlanner) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 600, 11);
  RepairService service;
  RepairRequest request = Request(RepairMode::kSubset, parsed.fds, &table);

  auto miss = service.Serve(request);
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->cache_hit);
  auto hit = service.Serve(request);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(miss->cache_key, hit->cache_key);

  auto direct = ComputeSRepair(parsed.fds, table);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ExpectSameRepair(direct->repair, miss->repair);
  ExpectSameRepair(direct->repair, hit->repair);
  EXPECT_EQ(miss->distance, direct->distance);
  EXPECT_EQ(hit->distance, direct->distance);
  EXPECT_EQ(hit->optimal, direct->optimal);

  RepairServiceStats stats = service.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(RepairServiceTest, UpdateHitAndMissAreBitIdenticalToPlanner) {
  ParsedFdSet parsed = OfficeFds();
  Rng rng(13);
  PlantedTableOptions options;
  options.num_tuples = 80;
  options.corruptions = 12;
  Table table = PlantedDirtyTable(parsed.schema, parsed.fds, options, &rng);
  // The direct run uses a content-identical copy with its own ValuePool.
  // Fresh-constant names are deterministic ("⊥t<id>.<attr>", derived from
  // the cell, not from pool counters), so a shared pool would also work —
  // the private pool is kept to pin exactly that cross-pool agreement.
  auto copy = TableFromCsv(TableToCsv(table));
  ASSERT_TRUE(copy.ok()) << copy.status();
  FdSet copy_fds = ParseFdSetOrDie(
      copy->schema(), "facility -> city; facility room -> floor");

  RepairService service;
  RepairRequest request = Request(RepairMode::kUpdate, parsed.fds, &table);
  auto miss = service.Serve(request);
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->cache_hit);
  auto hit = service.Serve(request);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->cache_hit);

  auto direct = ComputeURepair(copy_fds, *copy);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ExpectSameRepair(direct->update, miss->repair);
  ExpectSameRepair(direct->update, hit->repair);
  EXPECT_EQ(miss->distance, direct->distance);
  EXPECT_EQ(hit->distance, direct->distance);
}

TEST(RepairServiceTest, EquivalentFdPhrasingsShareOneCacheEntry) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 200, 17);
  RepairService service;

  RepairRequest minimal = Request(RepairMode::kSubset, parsed.fds, &table);
  auto first = service.Serve(minimal);
  ASSERT_TRUE(first.ok()) << first.status();

  // Same FDs plus an implied one, listed in a different order: the
  // canonical cover collapses both phrasings to one key.
  FdSet rephrased = ParseFdSetOrDie(
      parsed.schema,
      "facility room -> floor; facility -> city; facility room -> city");
  RepairRequest equivalent = Request(RepairMode::kSubset, rephrased, &table);
  auto second = service.Serve(equivalent);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(first->cache_key, second->cache_key);
  ExpectSameRepair(first->repair, second->repair);
  EXPECT_EQ(service.stats().misses, 1u);
  EXPECT_EQ(service.stats().hits, 1u);
}

TEST(RepairServiceTest, ContentIdenticalTablesShareOneCacheEntry) {
  ParsedFdSet parsed = OfficeFds();
  Table original = ScalingFamilyTable(parsed, 150, 19);
  Table copy = CopyContent(original);

  RepairService service;
  auto first =
      service.Serve(Request(RepairMode::kSubset, parsed.fds, &original));
  ASSERT_TRUE(first.ok()) << first.status();
  // The copy lives in its own Table/ValuePool under another relation name;
  // only content matches. The FD set is re-parsed against the copy's
  // schema (same attribute order).
  FdSet copy_fds = ParseFdSetOrDie(
      copy.schema(), "facility -> city; facility room -> floor");
  auto second =
      service.Serve(Request(RepairMode::kSubset, copy_fds, &copy));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->cache_hit);
  ExpectSameRepair(first->repair, second->repair);
}

TEST(RepairServiceTest, LruEvictsBeyondCapacity) {
  ParsedFdSet parsed = OfficeFds();
  std::vector<Table> tables;
  for (int i = 0; i < 3; ++i) {
    tables.push_back(ScalingFamilyTable(parsed, 100 + 10 * i, 100 + i));
  }
  RepairServiceOptions options;
  options.cache_capacity = 2;
  RepairService service(options);

  for (const Table& table : tables) {
    auto response =
        service.Serve(Request(RepairMode::kSubset, parsed.fds, &table));
    ASSERT_TRUE(response.ok()) << response.status();
  }
  RepairServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);

  // tables[0] was least recently used: it recomputes; tables[2] still hits.
  auto evicted =
      service.Serve(Request(RepairMode::kSubset, parsed.fds, &tables[0]));
  ASSERT_TRUE(evicted.ok()) << evicted.status();
  EXPECT_FALSE(evicted->cache_hit);
  auto kept =
      service.Serve(Request(RepairMode::kSubset, parsed.fds, &tables[2]));
  ASSERT_TRUE(kept.ok()) << kept.status();
  EXPECT_TRUE(kept->cache_hit);
}

TEST(RepairServiceTest, CapacityZeroDisablesCachingButStillServes) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 120, 23);
  RepairServiceOptions options;
  options.cache_capacity = 0;
  RepairService service(options);
  RepairRequest request = Request(RepairMode::kSubset, parsed.fds, &table);
  auto first = service.Serve(request);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = service.Serve(request);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->cache_hit);
  ExpectSameRepair(first->repair, second->repair);
  RepairServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(RepairServiceTest, BypassCacheNeitherReadsNorStores) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 120, 29);
  RepairService service;
  RepairRequest request = Request(RepairMode::kSubset, parsed.fds, &table);
  request.bypass_cache = true;
  auto first = service.Serve(request);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache_hit);
  RepairServiceStats stats = service.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(RepairServiceTest, SequentialThreadHintMatchesParallelResult) {
  ParsedFdSet parsed = Example31Ssn();
  Table table = ScalingFamilyTable(parsed, 800, 31);
  RepairService service;
  RepairRequest parallel = Request(RepairMode::kSubset, parsed.fds, &table);
  auto from_pool = service.Serve(parallel);
  ASSERT_TRUE(from_pool.ok()) << from_pool.status();

  RepairService fresh;  // separate service: no cache reuse across the two
  RepairRequest sequential = Request(RepairMode::kSubset, parsed.fds, &table);
  sequential.threads = 1;
  auto inline_run = fresh.Serve(sequential);
  ASSERT_TRUE(inline_run.ok()) << inline_run.status();
  ExpectSameRepair(from_pool->repair, inline_run->repair);
}

TEST(RepairServiceTest, SingleFlightDeduplicatesConcurrentIdenticalRequests) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 20000, 37);
  RepairService service;
  constexpr int kClients = 6;
  std::vector<StatusOr<RepairResponse>> responses(
      kClients, Status::Internal("never ran"));
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      responses[c] =
          service.Serve(Request(RepairMode::kSubset, parsed.fds, &table));
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(responses[c].ok()) << c << ": " << responses[c].status();
    ExpectSameRepair(responses[0]->repair, responses[c]->repair);
  }
  RepairServiceStats stats = service.stats();
  // Exactly one execution; everyone else was served from it — either by
  // waiting on the in-flight computation (counted in single_flight_waits
  // AND in hits once served) or by finding the finished entry.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kClients - 1));
  EXPECT_LE(stats.single_flight_waits, static_cast<uint64_t>(kClients - 1));
}

TEST(RepairServiceTest, DeadlineAndCapacityRejectionUnderFullQueue) {
  // The occupant must hold the single execution slot for much longer than
  // the queued request's deadline on any machine. A chain family does not
  // cut it anymore — the span recursion core repairs a 400k-tuple office
  // chain in tens of milliseconds — so use the ssn lhs-marriage family,
  // whose cost is dominated by the bipartite matching, not by grouping.
  ParsedFdSet parsed = Example31Ssn();
  Table big = ScalingFamilyTable(parsed, 32768, 41);
  Table small_a = ScalingFamilyTable(parsed, 50, 43);
  Table small_b = ScalingFamilyTable(parsed, 60, 47);

  RepairServiceOptions options;
  options.engine.threads = 1;
  options.max_inflight = 1;
  options.max_queue = 1;
  RepairService service(options);

  // Occupy the single execution slot with a long request.
  std::thread occupant([&] {
    auto response =
        service.Serve(Request(RepairMode::kSubset, parsed.fds, &big));
    EXPECT_TRUE(response.ok()) << response.status();
  });
  while (service.stats().inflight == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }

  // Fill the one queue slot with a request that will time out waiting.
  std::thread queued([&] {
    RepairRequest request = Request(RepairMode::kSubset, parsed.fds, &small_a);
    request.deadline = milliseconds(300);
    auto response = service.Serve(request);
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  });
  while (service.stats().queued == 0 &&
         service.stats().rejected_deadline == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }

  // Queue full: the next distinct request is rejected immediately.
  if (service.stats().queued > 0) {
    RepairRequest request = Request(RepairMode::kSubset, parsed.fds, &small_b);
    auto response = service.Serve(request);
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
    EXPECT_GE(service.stats().rejected_unavailable, 1u);
  }

  queued.join();
  occupant.join();
  EXPECT_GE(service.stats().rejected_deadline, 1u);

  // The slot drained: a fresh request serves normally again.
  auto after =
      service.Serve(Request(RepairMode::kSubset, parsed.fds, &small_b));
  EXPECT_TRUE(after.ok()) << after.status();
}

TEST(RepairServiceTest, ExpiredDeadlineRejectsBeforeExecution) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 5000, 53);
  RepairService service;
  RepairRequest request = Request(RepairMode::kSubset, parsed.fds, &table);
  request.deadline = milliseconds(0);
  auto response = service.Serve(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().rejected_deadline, 1u);
  // The failure was not cached: a follow-up without a deadline succeeds.
  request.deadline.reset();
  auto retry = service.Serve(request);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_FALSE(retry->cache_hit);
}

TEST(RepairServiceTest, FollowerDoesNotInheritLeaderDeadlineFailure) {
  // A follower coalesced onto a leader whose own deadline kills the
  // computation must not be handed that kDeadlineExceeded: deadline and
  // capacity failures are the leader's circumstances, so the follower
  // retries as the new leader. Whichever interleaving the scheduler
  // picks, the deadline-free request must succeed and the expired one
  // must fail.
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 30000, 61);
  RepairService service;

  StatusOr<RepairResponse> expired = Status::Internal("never ran");
  StatusOr<RepairResponse> patient = Status::Internal("never ran");
  std::thread expired_client([&] {
    RepairRequest request = Request(RepairMode::kSubset, parsed.fds, &table);
    request.deadline = milliseconds(0);
    expired = service.Serve(request);
  });
  std::thread patient_client([&] {
    patient =
        service.Serve(Request(RepairMode::kSubset, parsed.fds, &table));
  });
  expired_client.join();
  patient_client.join();

  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(patient.ok()) << patient.status();
  auto direct = ComputeSRepair(parsed.fds, table);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ExpectSameRepair(direct->repair, patient->repair);
}

TEST(RepairServiceTest, BackendSelectionRoundTripsAndKeysTheCache) {
  // The 3-way A->B violation clique: any repair keeps one tuple. The exact
  // backends prove distance 2; the fused local-ratio route certifies only
  // the a-priori factor 2 against its packing bound of 1.
  ParsedFdSet parsed = DeltaAtoBtoC();
  Table table(parsed.schema);
  table.AddTuple({"a", "x", "p"});
  table.AddTuple({"a", "y", "q"});
  table.AddTuple({"a", "z", "r"});
  RepairService service;

  RepairRequest exact = Request(RepairMode::kSubset, parsed.fds, &table);
  exact.backend = kSolverIlp;
  auto miss = service.Serve(exact);
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->cache_hit);
  EXPECT_EQ(miss->backend, kSolverIlp);
  EXPECT_EQ(miss->route, "ilp-branch-and-bound");
  EXPECT_TRUE(miss->optimal);
  EXPECT_DOUBLE_EQ(miss->distance, 2.0);
  EXPECT_DOUBLE_EQ(miss->lower_bound, 2.0);
  EXPECT_DOUBLE_EQ(miss->achieved_ratio, 1.0);

  // The cached replay carries the full solver provenance.
  auto hit = service.Serve(exact);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->cache_key, miss->cache_key);
  EXPECT_EQ(hit->backend, miss->backend);
  EXPECT_EQ(hit->lower_bound, miss->lower_bound);
  EXPECT_EQ(hit->achieved_ratio, miss->achieved_ratio);
  ExpectSameRepair(miss->repair, hit->repair);

  // Same table, different backend: a distinct key, never an aliased hit.
  RepairRequest approx = Request(RepairMode::kSubset, parsed.fds, &table);
  approx.backend = kSolverLocalRatio;
  auto other = service.Serve(approx);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_FALSE(other->cache_hit);
  EXPECT_NE(other->cache_key, miss->cache_key);
  EXPECT_EQ(other->backend, kSolverLocalRatio);
  EXPECT_FALSE(other->optimal);
  EXPECT_DOUBLE_EQ(other->ratio_bound, 2.0);
  EXPECT_DOUBLE_EQ(other->lower_bound, 1.0);
  EXPECT_DOUBLE_EQ(other->achieved_ratio, 2.0);
  EXPECT_EQ(service.stats().misses, 2u);
}

TEST(RepairServiceTest, MaxRatioGateSurfacesAndIsKeyedSeparately) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  Table table(parsed.schema);
  table.AddTuple({"a", "x", "p"});
  table.AddTuple({"a", "y", "q"});
  table.AddTuple({"a", "z", "r"});
  RepairService service;

  // The fused approx route certifies only ratio 2 here, so a 1.5 gate
  // rejects with kResourceExhausted — surfaced verbatim by the service.
  RepairRequest gated = Request(RepairMode::kSubset, parsed.fds, &table);
  gated.backend = kSolverLocalRatio;
  gated.max_ratio = 1.5;
  auto rejected = service.Serve(gated);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // The failure was not cached, and the ungated request has its own key:
  // it executes and succeeds.
  RepairRequest ungated = Request(RepairMode::kSubset, parsed.fds, &table);
  ungated.backend = kSolverLocalRatio;
  auto accepted = service.Serve(ungated);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_FALSE(accepted->cache_hit);

  // An exact backend passes the same gate (certified ratio 1).
  RepairRequest exact_gated = Request(RepairMode::kSubset, parsed.fds, &table);
  exact_gated.backend = kSolverBnb;
  exact_gated.max_ratio = 1.5;
  auto proved = service.Serve(exact_gated);
  ASSERT_TRUE(proved.ok()) << proved.status();
  EXPECT_TRUE(proved->optimal);
  EXPECT_EQ(proved->backend, kSolverBnb);
}

TEST(RepairServiceTest, SolverKnobsRejectedForUpdateMode) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 50, 67);
  RepairService service;

  RepairRequest with_backend = Request(RepairMode::kUpdate, parsed.fds, &table);
  with_backend.backend = kSolverIlp;
  EXPECT_EQ(service.Serve(with_backend).status().code(),
            StatusCode::kInvalidArgument);

  RepairRequest with_ratio = Request(RepairMode::kUpdate, parsed.fds, &table);
  with_ratio.max_ratio = 1.5;
  EXPECT_EQ(service.Serve(with_ratio).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RepairServiceTest, InvalidateCacheForcesRecomputation) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 100, 59);
  RepairService service;
  RepairRequest request = Request(RepairMode::kSubset, parsed.fds, &table);
  ASSERT_TRUE(service.Serve(request).ok());
  service.InvalidateCache();
  EXPECT_EQ(service.stats().entries, 0u);
  auto again = service.Serve(request);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(again->cache_hit);
}

}  // namespace
}  // namespace fdrepair
