// Tests for the storage layer: ValuePool, Table, TableView, consistency
// checks, distances and CSV I/O.

#include <gtest/gtest.h>

#include "catalog/fd_parser.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "storage/table.h"
#include "storage/table_io.h"
#include "storage/table_view.h"

namespace fdrepair {
namespace {

Table MakeOfficeT() {
  Schema schema =
      Schema::MakeOrDie("Office", {"facility", "room", "floor", "city"});
  Table table(schema);
  EXPECT_TRUE(table.AddTupleWithId(1, {"HQ", "322", "3", "Paris"}, 2).ok());
  EXPECT_TRUE(table.AddTupleWithId(2, {"HQ", "322", "30", "Madrid"}, 1).ok());
  EXPECT_TRUE(table.AddTupleWithId(3, {"HQ", "122", "1", "Madrid"}, 1).ok());
  EXPECT_TRUE(table.AddTupleWithId(4, {"Lab1", "B35", "3", "London"}, 2).ok());
  return table;
}

FdSet OfficeDelta(const Schema& schema) {
  return ParseFdSetOrDie(schema, "facility -> city; facility room -> floor");
}

TEST(ValuePoolTest, InternIsIdempotent) {
  ValuePool pool;
  ValueId a = pool.Intern("Paris");
  EXPECT_EQ(pool.Intern("Paris"), a);
  EXPECT_NE(pool.Intern("Madrid"), a);
  EXPECT_EQ(pool.Text(a), "Paris");
  EXPECT_TRUE(pool.Lookup("Paris").ok());
  EXPECT_FALSE(pool.Lookup("Rome").ok());
}

TEST(ValuePoolTest, FreshValuesAreDistinct) {
  ValuePool pool;
  pool.Intern("⊥0");  // adversarial: user data colliding with fresh names
  ValueId f1 = pool.FreshValue();
  ValueId f2 = pool.FreshValue();
  EXPECT_NE(f1, f2);
  EXPECT_TRUE(pool.IsFresh(f1));
  EXPECT_FALSE(pool.IsFresh(pool.Intern("Paris")));
  EXPECT_NE(pool.Text(f1), "⊥0");  // skipped the collision
}

TEST(TableTest, BasicAccessors) {
  Table table = MakeOfficeT();
  EXPECT_EQ(table.num_tuples(), 4);
  EXPECT_EQ(table.id(0), 1);
  EXPECT_EQ(table.weight(0), 2);
  EXPECT_EQ(table.ValueText(1, 3), "Madrid");
  EXPECT_EQ(*table.RowOf(4), 3);
  EXPECT_FALSE(table.RowOf(99).ok());
  EXPECT_DOUBLE_EQ(table.TotalWeight(), 6);
  EXPECT_FALSE(table.IsUnweighted());
  EXPECT_TRUE(table.IsDuplicateFree());
}

TEST(TableTest, DuplicatesAndWeights) {
  Table table(Schema::Anonymous(2));
  table.AddTuple({"x", "y"});
  table.AddTuple({"x", "y"});
  EXPECT_FALSE(table.IsDuplicateFree());
  EXPECT_TRUE(table.IsUnweighted());
  EXPECT_FALSE(table.AddTupleWithId(1, {"a", "b"}, 1).ok());  // id taken
  EXPECT_FALSE(table.AddTupleWithId(9, {"a", "b"}, 0).ok());  // zero weight
  EXPECT_FALSE(table.AddTupleWithId(9, {"a"}, 1).ok());       // arity
}

TEST(TableTest, SubsetPreservesIdsAndWeights) {
  Table table = MakeOfficeT();
  Table subset = table.SubsetByRows({1, 3});
  EXPECT_EQ(subset.num_tuples(), 2);
  EXPECT_EQ(subset.id(0), 2);
  EXPECT_EQ(subset.weight(1), 2);
  EXPECT_EQ(subset.pool(), table.pool());
}

TEST(TableTest, CloneAndSetValue) {
  Table table = MakeOfficeT();
  Table clone = table.Clone();
  clone.SetValue(0, 3, clone.Intern("Rome"));
  EXPECT_EQ(clone.ValueText(0, 3), "Rome");
  EXPECT_EQ(table.ValueText(0, 3), "Paris");  // original untouched
}

// The column-store invariant: Column(a)[r] == value(r, a) after EVERY
// mutator, including the failure paths. This is the audit for the hybrid
// layout — a stale column view (columns disagreeing with rows) must be
// impossible no matter which mutation path ran.
TEST(TableTest, ColumnStoreStaysInSyncThroughEveryMutator) {
  Table table = MakeOfficeT();  // AddTupleWithId path
  EXPECT_TRUE(table.ColumnStoreConsistent());
  ASSERT_EQ(table.Column(3).size(), 4);
  EXPECT_EQ(table.Column(3)[1], table.value(1, 3));

  // Failed appends (duplicate id, bad weight, arity mismatch) must leave
  // both representations untouched.
  EXPECT_FALSE(table.AddTupleWithId(1, {"a", "b", "c", "d"}, 1).ok());
  EXPECT_FALSE(table.AddTupleWithId(9, {"a", "b", "c", "d"}, -1).ok());
  EXPECT_FALSE(table.AddTupleWithId(9, {"a"}, 1).ok());
  EXPECT_EQ(table.num_tuples(), 4);
  EXPECT_EQ(table.Column(0).size(), 4);
  EXPECT_TRUE(table.ColumnStoreConsistent());

  // AddTuple (auto id) path.
  table.AddTuple({"Lab2", "C1", "2", "Rome"}, 3.0);
  EXPECT_TRUE(table.ColumnStoreConsistent());
  EXPECT_EQ(table.Column(0).size(), 5);

  // SetValue (the urepair cell-edit replay path).
  table.SetValue(2, 3, table.Intern("Lisbon"));
  EXPECT_EQ(table.Column(3)[2], *table.pool()->Lookup("Lisbon"));
  EXPECT_TRUE(table.ColumnStoreConsistent());

  // SubsetByRows and Clone build their mirrors from scratch.
  Table subset = table.SubsetByRows({4, 0, 2});
  EXPECT_TRUE(subset.ColumnStoreConsistent());
  EXPECT_EQ(subset.Column(3)[0], table.Column(3)[4]);
  EXPECT_EQ(subset.Column(3)[2], table.Column(3)[2]);
  Table clone = table.Clone();
  EXPECT_TRUE(clone.ColumnStoreConsistent());
  clone.SetValue(0, 0, clone.Intern("Annex"));
  EXPECT_TRUE(clone.ColumnStoreConsistent());
  EXPECT_TRUE(table.ColumnStoreConsistent());  // original untouched
  EXPECT_NE(clone.Column(0)[0], table.Column(0)[0]);

  // CSV load (TableFromCsv goes through the append paths).
  std::string csv = TableToCsv(table);
  auto loaded = TableFromCsv(csv, table.schema().relation_name());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ColumnStoreConsistent());
  EXPECT_EQ(loaded->num_tuples(), table.num_tuples());
}

TEST(TableViewTest, GroupByPartitions) {
  Table table = MakeOfficeT();
  TableView view(table);
  auto facility = *table.schema().AttributeId("facility");
  std::vector<TableView> groups = view.GroupBy(AttrSet::Of({facility}));
  ASSERT_EQ(groups.size(), 2u);  // HQ and Lab1
  EXPECT_EQ(groups[0].num_tuples() + groups[1].num_tuples(), 4);
  EXPECT_DOUBLE_EQ(view.TotalWeight(), 6);
}

TEST(TableViewTest, GroupByAllAttrsSeparatesDistinctRows) {
  Table table = MakeOfficeT();
  TableView view(table);
  EXPECT_EQ(view.GroupBy(table.schema().AllAttrs()).size(), 4u);
  EXPECT_EQ(view.GroupBy(AttrSet()).size(), 1u);  // one trivial group
}

TEST(ConsistencyTest, OfficeViolations) {
  Table table = MakeOfficeT();
  FdSet fds = OfficeDelta(table.schema());
  EXPECT_FALSE(Satisfies(table, fds));
  // Tuple 1 conflicts with both 2 (city and floor) and 3 (city).
  std::vector<Violation> violations = FindViolations(TableView(table), fds);
  EXPECT_GE(violations.size(), 3u);
  Table consistent = table.SubsetByRows({1, 2, 3});  // S1 of Figure 1
  EXPECT_TRUE(Satisfies(consistent, fds));
}

TEST(ConsistencyTest, PairConsistent) {
  Table table = MakeOfficeT();
  FdSet fds = OfficeDelta(table.schema());
  EXPECT_FALSE(PairConsistent(table.tuple(0), table.tuple(1), fds));
  EXPECT_TRUE(PairConsistent(table.tuple(1), table.tuple(2), fds));
  EXPECT_TRUE(PairConsistent(table.tuple(0), table.tuple(3), fds));
}

TEST(DistanceTest, DistSubMatchesExample23) {
  Table table = MakeOfficeT();
  EXPECT_DOUBLE_EQ(DistSubOrDie(table.SubsetByRows({1, 2, 3}), table), 2);
  EXPECT_DOUBLE_EQ(DistSubOrDie(table.SubsetByRows({0, 3}), table), 2);
  EXPECT_DOUBLE_EQ(DistSubOrDie(table.SubsetByRows({2, 3}), table), 3);
  EXPECT_DOUBLE_EQ(DistSubOrDie(table.Clone(), table), 0);
}

TEST(DistanceTest, DistSubRejectsNonSubsets) {
  Table table = MakeOfficeT();
  Table tampered = table.SubsetByRows({0});
  tampered.SetValue(0, 0, tampered.Intern("X"));
  EXPECT_FALSE(DistSub(tampered, table).ok());
}

TEST(DistanceTest, DistUpdWeightedHamming) {
  Table table = MakeOfficeT();
  Table update = table.Clone();
  // Change two cells of tuple 1 (weight 2): dist = 4 (like U3).
  update.SetValue(0, 2, update.Intern("30"));
  update.SetValue(0, 3, update.Intern("Madrid"));
  EXPECT_DOUBLE_EQ(DistUpdOrDie(update, table), 4);
  EXPECT_DOUBLE_EQ(DistUpdOrDie(table.Clone(), table), 0);
  EXPECT_EQ(HammingDistance(table.tuple(0), table.tuple(1)), 2);
}

TEST(DistanceTest, DistUpdRejectsDroppedTuples) {
  Table table = MakeOfficeT();
  EXPECT_FALSE(DistUpd(table.SubsetByRows({0, 1}), table).ok());
}

TEST(TableIoTest, CsvRoundTrip) {
  Table table = MakeOfficeT();
  std::string csv = TableToCsv(table);
  auto parsed = TableFromCsv(csv, "Office");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_tuples(), 4);
  EXPECT_EQ(parsed->schema().arity(), 4);
  EXPECT_EQ(parsed->ValueText(0, 3), "Paris");
  EXPECT_DOUBLE_EQ(parsed->weight(0), 2);
  EXPECT_EQ(parsed->id(3), 4);
}

TEST(TableIoTest, CsvWithoutReservedColumns) {
  auto parsed = TableFromCsv("A,B\nx,y\nz,w\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_tuples(), 2);
  EXPECT_DOUBLE_EQ(parsed->weight(0), 1);
  EXPECT_EQ(parsed->id(0), 1);
}

TEST(TableIoTest, CsvErrors) {
  EXPECT_FALSE(TableFromCsv("").ok());
  EXPECT_FALSE(TableFromCsv("A,B\nonly-one-field\n").ok());
  EXPECT_FALSE(TableFromCsv("A,w\nx,notanumber\n").ok());
  EXPECT_FALSE(TableFromCsv("A,id\nx,notanumber\n").ok());
}

TEST(TableTest, ToStringContainsHeaderAndValues) {
  Table table = MakeOfficeT();
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("facility"), std::string::npos);
  EXPECT_NE(rendered.find("Paris"), std::string::npos);
  EXPECT_NE(rendered.find("Lab1"), std::string::npos);
}

}  // namespace
}  // namespace fdrepair
