// Tests for the graph substrate: min-cost flow, max-weight bipartite
// matching (vs brute force), weighted vertex cover (local-ratio guarantee vs
// exact), and the conflict graph.

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/fd_parser.h"
#include "common/random.h"
#include "graph/bipartite_matching.h"
#include "graph/conflict_graph.h"
#include "graph/graph.h"
#include "graph/min_cost_flow.h"
#include "graph/vertex_cover.h"
#include "storage/table.h"
#include "workloads/graph_gen.h"

namespace fdrepair {
namespace {

TEST(GraphTest, EdgesDedupAndAdjacency) {
  NodeWeightedGraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);  // duplicate
  graph.AddEdge(2, 3);
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_FALSE(graph.HasEdge(0, 2));
  EXPECT_EQ(graph.Degree(1), 1);
  EXPECT_EQ(graph.MaxDegree(), 1);
  graph.set_weight(2, 5);
  EXPECT_DOUBLE_EQ(graph.WeightOf({2, 3}), 6);
}

TEST(GraphTest, IsVertexCover) {
  NodeWeightedGraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  EXPECT_TRUE(IsVertexCover(graph, {1}));
  EXPECT_FALSE(IsVertexCover(graph, {0}));
  EXPECT_TRUE(IsVertexCover(graph, {0, 2}));
}

TEST(MinCostFlowTest, SimplePath) {
  // 0 -> 1 -> 2, capacities 1, costs 1 and 2.
  MinCostFlow flow(3);
  flow.AddEdge(0, 1, 1, 1);
  flow.AddEdge(1, 2, 1, 2);
  auto result = flow.Solve(0, 2);
  EXPECT_DOUBLE_EQ(result.flow, 1);
  EXPECT_DOUBLE_EQ(result.cost, 3);
}

TEST(MinCostFlowTest, PrefersCheaperParallelRoute) {
  MinCostFlow flow(4);
  int cheap = flow.AddEdge(0, 1, 1, 1);
  int expensive = flow.AddEdge(0, 2, 1, 5);
  flow.AddEdge(1, 3, 1, 0);
  flow.AddEdge(2, 3, 1, 0);
  auto result = flow.Solve(0, 3);
  EXPECT_DOUBLE_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, 6);
  EXPECT_DOUBLE_EQ(flow.Flow(cheap), 1);
  EXPECT_DOUBLE_EQ(flow.Flow(expensive), 1);
}

TEST(MinCostFlowTest, StopsOnNonNegativePath) {
  // With negated weights, only profitable augmentations are taken.
  MinCostFlow flow(4);
  flow.AddEdge(0, 1, 1, 0);
  flow.AddEdge(0, 2, 1, 0);
  int good = flow.AddEdge(1, 3, 1, -5);
  int bad = flow.AddEdge(2, 3, 1, 3);
  auto result = flow.Solve(0, 3, /*stop_on_nonnegative_path=*/true);
  EXPECT_DOUBLE_EQ(result.flow, 1);
  EXPECT_DOUBLE_EQ(result.cost, -5);
  EXPECT_DOUBLE_EQ(flow.Flow(good), 1);
  EXPECT_DOUBLE_EQ(flow.Flow(bad), 0);
}

TEST(MatchingTest, PicksHeavierAlternative) {
  // Two left nodes both prefer right node 0; weights force a swap.
  std::vector<BipartiteEdge> edges{{0, 0, 10}, {1, 0, 9}, {1, 1, 8}};
  MatchingResult result = MaxWeightBipartiteMatching(2, 2, edges);
  EXPECT_DOUBLE_EQ(result.total_weight, 18);
  EXPECT_EQ(result.pairs.size(), 2u);
}

TEST(MatchingTest, MaxWeightNotMaxCardinality) {
  // One heavy edge beats two light ones sharing its endpoints.
  std::vector<BipartiteEdge> edges{{0, 0, 10}, {0, 1, 1}, {1, 0, 1}};
  MatchingResult result = MaxWeightBipartiteMatching(2, 2, edges);
  EXPECT_DOUBLE_EQ(result.total_weight, 10);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0], (std::pair<int, int>(0, 0)));
}

TEST(MatchingTest, DuplicateEdgesKeepHeaviest) {
  std::vector<BipartiteEdge> edges{{0, 0, 1}, {0, 0, 7}};
  MatchingResult result = MaxWeightBipartiteMatching(1, 1, edges);
  EXPECT_DOUBLE_EQ(result.total_weight, 7);
}

TEST(MatchingTest, EmptyInputs) {
  MatchingResult result = MaxWeightBipartiteMatching(0, 0, {});
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_DOUBLE_EQ(result.total_weight, 0);
}

class MatchingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingPropertyTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    int num_left = 1 + static_cast<int>(rng.UniformUint64(5));
    int num_right = 1 + static_cast<int>(rng.UniformUint64(5));
    int num_edges = static_cast<int>(rng.UniformUint64(13));
    std::vector<BipartiteEdge> edges;
    for (int e = 0; e < num_edges; ++e) {
      edges.push_back(
          BipartiteEdge{static_cast<int>(rng.UniformUint64(num_left)),
                        static_cast<int>(rng.UniformUint64(num_right)),
                        rng.UniformDouble(0.1, 10.0)});
    }
    MatchingResult fast = MaxWeightBipartiteMatching(num_left, num_right,
                                                     edges);
    auto slow = MaxWeightMatchingBruteForce(num_left, num_right, edges);
    ASSERT_TRUE(slow.ok());
    EXPECT_NEAR(fast.total_weight, slow->total_weight, 1e-6)
        << "trial " << trial;
    // Validity: no node reused.
    std::vector<int> left_used(num_left, 0), right_used(num_right, 0);
    for (const auto& [l, r] : fast.pairs) {
      EXPECT_EQ(left_used[l]++, 0);
      EXPECT_EQ(right_used[r]++, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(VertexCoverTest, LocalRatioOnTriangle) {
  NodeWeightedGraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(0, 2);
  std::vector<int> cover = VertexCoverLocalRatio(graph);
  EXPECT_TRUE(IsVertexCover(graph, cover));
  // Optimal is 2; the guarantee allows up to 4, but a triangle yields <= 3.
  EXPECT_LE(graph.WeightOf(cover), 4.0);
}

TEST(VertexCoverTest, ExactOnStar) {
  NodeWeightedGraph graph(5);
  for (int leaf = 1; leaf < 5; ++leaf) graph.AddEdge(0, leaf);
  auto cover = MinWeightVertexCoverExact(graph);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 1u);
  EXPECT_EQ((*cover)[0], 0);
  // With a heavy center, the leaves win.
  graph.set_weight(0, 10);
  cover = MinWeightVertexCoverExact(graph);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 4u);
}

TEST(VertexCoverTest, ExactRefusesHugeGraphs) {
  NodeWeightedGraph graph(100);
  EXPECT_EQ(MinWeightVertexCoverExact(graph, 40).status().code(),
            StatusCode::kResourceExhausted);
}

class VertexCoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VertexCoverPropertyTest, LocalRatioWithinTwiceExact) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + static_cast<int>(rng.UniformUint64(12));
    int m = static_cast<int>(rng.UniformUint64(2 * n));
    NodeWeightedGraph graph = RandomGraph(n, std::min<int>(m, n * (n - 1) / 2),
                                          &rng);
    for (int v = 0; v < n; ++v) {
      graph.set_weight(v, rng.UniformDouble(0.5, 4.0));
    }
    std::vector<int> approx = VertexCoverLocalRatio(graph);
    EXPECT_TRUE(IsVertexCover(graph, approx));
    auto exact = MinWeightVertexCoverExact(graph);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(graph.WeightOf(approx), 2.0 * graph.WeightOf(*exact) + 1e-9);
    // Minimization never breaks validity and never adds weight.
    std::vector<int> minimized = MinimizeCover(graph, approx);
    EXPECT_TRUE(IsVertexCover(graph, minimized));
    EXPECT_LE(graph.WeightOf(minimized), graph.WeightOf(approx) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexCoverPropertyTest,
                         ::testing::Values(7, 17, 27, 37, 47));

TEST(ConflictGraphTest, EdgesMatchViolations) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"x", "1"}, 2);
  table.AddTuple({"x", "2"}, 1);
  table.AddTuple({"y", "1"}, 1);
  NodeWeightedGraph graph = BuildConflictGraph(TableView(table), parsed.fds);
  EXPECT_EQ(graph.num_nodes(), 3);
  EXPECT_EQ(graph.num_edges(), 1);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_DOUBLE_EQ(graph.weight(0), 2);
}

}  // namespace
}  // namespace fdrepair
