// End-to-end pipeline round-trips: every algorithm's output is re-checked
// with the independent verifiers in verify/repair_check — consistency via
// Satisfies, the reported distance via DistSub/DistUpd recomputation, and
// the §2.3 repair-class ladder (consistent ⊂ repair ⊂ optimal) — on
// randomized instances across all named FD sets.  The planners and the
// checkers share no solver state on the polynomial side's happy path, so
// agreement here is a genuine cross-validation.

#include <gtest/gtest.h>

#include "common/random.h"
#include "srepair/planner.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/planner.h"
#include "verify/repair_check.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

class RepairPipelineTest : public ::testing::TestWithParam<uint64_t> {};

// ComputeSRepair (auto route) on random weighted tables: the output must be
// a consistent subset, the reported distance must match an independent
// recomputation, claimed optimality must survive the checker, and the
// ratio bound must hold whenever the checker can determine the optimum.
TEST_P(RepairPipelineTest, SRepairRoundTrip) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions options;
    options.num_tuples = 10;
    options.domain_size = 3;
    options.heavy_fraction = 0.5;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);

    auto result = ComputeSRepair(named.parsed.fds, table);
    ASSERT_TRUE(result.ok()) << named.name << ": " << result.status();
    EXPECT_TRUE(Satisfies(result->repair, named.parsed.fds)) << named.name;
    EXPECT_NEAR(DistSubOrDie(result->repair, table), result->distance, 1e-9)
        << named.name;

    auto check = CheckSubsetRepair(named.parsed.fds, table, result->repair);
    ASSERT_TRUE(check.ok()) << named.name << ": " << check.status();
    EXPECT_NE(check->repair_class, SubsetRepairClass::kNotAConsistentSubset)
        << named.name;
    EXPECT_NEAR(check->distance, result->distance, 1e-9) << named.name;
    if (result->optimal && check->optimality_known) {
      EXPECT_EQ(check->repair_class, SubsetRepairClass::kOptimalSubsetRepair)
          << named.name << ": planner claims optimal, checker says "
          << SubsetRepairClassToString(check->repair_class);
    }
    if (check->optimality_known) {
      EXPECT_LE(check->distance,
                result->ratio_bound * check->optimal_distance + 1e-6)
          << named.name << ": ratio bound " << result->ratio_bound
          << " violated (dist " << check->distance << ", opt "
          << check->optimal_distance << ")";
    }
  }
}

// The exact strategy must always be confirmed optimal by the checker on
// instances small enough for the checker's own exhaustive solver.
TEST_P(RepairPipelineTest, SRepairExactIsCheckedOptimal) {
  Rng rng(GetParam() + 1);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions options;
    options.num_tuples = 8;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);

    SRepairOptions srepair_options;
    srepair_options.strategy = SRepairStrategy::kExactOnly;
    auto result = ComputeSRepair(named.parsed.fds, table, srepair_options);
    ASSERT_TRUE(result.ok()) << named.name << ": " << result.status();
    EXPECT_TRUE(result->optimal) << named.name;

    auto check = CheckSubsetRepair(named.parsed.fds, table, result->repair);
    ASSERT_TRUE(check.ok()) << named.name << ": " << check.status();
    ASSERT_TRUE(check->optimality_known) << named.name;
    EXPECT_EQ(check->repair_class, SubsetRepairClass::kOptimalSubsetRepair)
        << named.name;
    EXPECT_NEAR(check->optimal_distance, result->distance, 1e-9) << named.name;
  }
}

// ComputeURepair on tiny tables (small enough that the checker can both
// enumerate reverted-cell subsets and run its exhaustive optimum).
TEST_P(RepairPipelineTest, URepairRoundTrip) {
  Rng rng(GetParam() + 2);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions options;
    options.num_tuples = 5;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);

    auto result = ComputeURepair(named.parsed.fds, table);
    ASSERT_TRUE(result.ok()) << named.name << ": " << result.status();
    EXPECT_TRUE(Satisfies(result->update, named.parsed.fds)) << named.name;
    EXPECT_NEAR(DistUpdOrDie(result->update, table), result->distance, 1e-9)
        << named.name;

    auto check = CheckUpdateRepair(named.parsed.fds, table, result->update,
                                   /*max_changed_cells=*/18);
    if (!check.ok()) {
      // Too many changed cells for the minimality enumeration: the basic
      // contract was still verified above, so just move on.
      ASSERT_EQ(check.status().code(), StatusCode::kResourceExhausted)
          << named.name << ": " << check.status();
      continue;
    }
    EXPECT_NE(check->repair_class, UpdateRepairClass::kNotAConsistentUpdate)
        << named.name;
    EXPECT_NEAR(check->distance, result->distance, 1e-9) << named.name;
    if (result->optimal && check->optimality_known) {
      EXPECT_EQ(check->repair_class, UpdateRepairClass::kOptimalUpdateRepair)
          << named.name << ": planner claims optimal, checker says "
          << UpdateRepairClassToString(check->repair_class);
    }
    if (check->optimality_known) {
      EXPECT_LE(check->distance,
                result->ratio_bound * check->optimal_distance + 1e-6)
          << named.name << ": ratio bound " << result->ratio_bound
          << " violated (dist " << check->distance << ", opt "
          << check->optimal_distance << ")";
    }
  }
}

// Planted mostly-clean tables: repair cost is bounded by the corruption
// cost, and both planners' outputs round-trip through the checkers.
TEST_P(RepairPipelineTest, PlantedTableRoundTrip) {
  Rng rng(GetParam() + 3);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    PlantedTableOptions options;
    options.num_tuples = 12;
    options.corruptions = 3;
    Rng table_rng = rng.Fork();
    Table table = PlantedDirtyTable(named.parsed.schema, named.parsed.fds,
                                    options, &table_rng);

    auto srepair = ComputeSRepair(named.parsed.fds, table);
    ASSERT_TRUE(srepair.ok()) << named.name << ": " << srepair.status();
    EXPECT_TRUE(Satisfies(srepair->repair, named.parsed.fds)) << named.name;
    EXPECT_NEAR(DistSubOrDie(srepair->repair, table), srepair->distance, 1e-9)
        << named.name;
    // Each corrupted cell dirties at most one tuple, so deleting those
    // tuples is a consistent subset; the planner is at worst ratio_bound
    // away from that cost.
    EXPECT_LE(srepair->distance,
              srepair->ratio_bound * options.corruptions + 1e-9)
        << named.name;

    auto scheck = CheckSubsetRepair(named.parsed.fds, table, srepair->repair);
    ASSERT_TRUE(scheck.ok()) << named.name << ": " << scheck.status();
    EXPECT_NE(scheck->repair_class, SubsetRepairClass::kNotAConsistentSubset)
        << named.name;

    URepairOptions urepair_options;
    urepair_options.allow_exact_search = false;
    auto urepair = ComputeURepair(named.parsed.fds, table, urepair_options);
    ASSERT_TRUE(urepair.ok()) << named.name << ": " << urepair.status();
    EXPECT_TRUE(Satisfies(urepair->update, named.parsed.fds)) << named.name;
    EXPECT_NEAR(DistUpdOrDie(urepair->update, table), urepair->distance, 1e-9)
        << named.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairPipelineTest,
                         ::testing::Values(2026, 4045, 8090));

}  // namespace
}  // namespace fdrepair
