// Tests for the pluggable SolverBackend API (srepair/solver_backend.h):
// registry behavior, cross-backend agreement with the brute-force oracle,
// LP/dual lower-bound sanity, cooperative limits, and the planner/quality
// knobs (SRepairOptions::backend, max_ratio) built on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <string>

#include "common/random.h"
#include "graph/conflict_graph.h"
#include "graph/vc_lp.h"
#include "graph/vertex_cover.h"
#include "srepair/planner.h"
#include "srepair/solver_backend.h"
#include "srepair/srepair_exact.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"
#include "workloads/graph_gen.h"

namespace fdrepair {
namespace {

SolverExec NoLimits() { return SolverExec{}; }

double OptimalCoverWeight(const NodeWeightedGraph& graph) {
  VcSearchResult result = MinWeightVertexCoverBnb(graph, VcSearchLimits{});
  EXPECT_TRUE(result.optimal);
  return result.weight;
}

int ConflictedCoreSize(const FdSet& fds, const Table& table) {
  TableView view(table);
  NodeWeightedGraph graph = BuildConflictGraph(view, fds);
  int core = 0;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (graph.Degree(v) > 0) ++core;
  }
  return core;
}

/// The 3-way A->B violation clique: any repair keeps one tuple, the fused
/// local-ratio route certifies exactly ratio 2 on it.
Table RhsTriangle(const ParsedFdSet& parsed) {
  Table table(parsed.schema);
  table.AddTuple({"a", "x", "p"});
  table.AddTuple({"a", "y", "q"});
  table.AddTuple({"a", "z", "r"});
  return table;
}

TEST(SolverRegistryTest, InTreeBackendsPresent) {
  const std::set<std::string> expected = {kSolverLocalRatio, kSolverBnb,
                                          kSolverIlp, kSolverLpRounding};
  std::set<std::string> names;
  for (const SolverBackend* backend : AllSolverBackends()) {
    names.insert(backend->name());
  }
  for (const std::string& name : expected) {
    EXPECT_TRUE(names.count(name)) << name;
    ASSERT_NE(FindSolverBackend(name), nullptr) << name;
    EXPECT_EQ(FindSolverBackend(name)->name(), name);
  }
  EXPECT_EQ(FindSolverBackend("no-such-solver"), nullptr);
  EXPECT_TRUE(FindSolverBackend(kSolverBnb)->exact());
  EXPECT_TRUE(FindSolverBackend(kSolverIlp)->exact());
  EXPECT_FALSE(FindSolverBackend(kSolverLocalRatio)->exact());
  EXPECT_FALSE(FindSolverBackend(kSolverLpRounding)->exact());
  EXPECT_TRUE(FindSolverBackend(kSolverLocalRatio)->has_fused_rows());
}

TEST(SolverRegistryTest, UnknownBackendNameFailsPlanning) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  SRepairOptions options;
  options.backend = "no-such-solver";
  auto result = ComputeSRepair(parsed.fds, RhsTriangle(parsed), options);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, ExternalRegistrationWinsByName) {
  // A thin wrapper under a fresh name; the registry must serve it back.
  class Wrapper : public SolverBackend {
   public:
    const char* name() const override { return "test-wrapper"; }
    bool exact() const override { return true; }
    StatusOr<SolverCover> SolveCover(const NodeWeightedGraph& graph,
                                     const SolverExec& exec) const override {
      return FindSolverBackend(kSolverBnb)->SolveCover(graph, exec);
    }
  };
  RegisterSolverBackend(std::make_unique<Wrapper>());
  const SolverBackend* found = FindSolverBackend("test-wrapper");
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->exact());
}

class CrossBackendPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossBackendPropertyTest, AgreesWithBruteForceOracle) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    for (int trial = 0; trial < 3; ++trial) {
      RandomTableOptions options;
      options.num_tuples = 8 + static_cast<int>(rng.UniformUint64(12));
      options.domain_size = 2 + static_cast<int>(rng.UniformUint64(3));
      options.heavy_fraction = (trial % 2 == 0) ? 0.5 : 0.0;
      Rng table_rng = rng.Fork();
      Table table = RandomTable(named.parsed.schema, options, &table_rng);
      auto oracle = OptSRepairExactRows(named.parsed.fds, TableView(table));
      ASSERT_TRUE(oracle.ok()) << named.name;
      const double optimal_distance =
          DistSubOrDie(table.SubsetByRows(*oracle), table);

      for (const char* name : {kSolverBnb, kSolverIlp}) {
        SRepairOptions srepair_options;
        srepair_options.backend = name;
        auto result = ComputeSRepair(named.parsed.fds, table, srepair_options);
        ASSERT_TRUE(result.ok()) << named.name << " " << name;
        EXPECT_TRUE(result->optimal) << named.name << " " << name;
        EXPECT_NEAR(result->distance, optimal_distance, 1e-9)
            << named.name << " " << name;
        EXPECT_NEAR(result->lower_bound, optimal_distance, 1e-9)
            << named.name << " " << name;
        EXPECT_DOUBLE_EQ(result->achieved_ratio, 1.0);
        EXPECT_TRUE(Satisfies(result->repair, named.parsed.fds));
      }

      for (const char* name : {kSolverLocalRatio, kSolverLpRounding}) {
        SRepairOptions srepair_options;
        srepair_options.backend = name;
        auto result = ComputeSRepair(named.parsed.fds, table, srepair_options);
        ASSERT_TRUE(result.ok()) << named.name << " " << name;
        EXPECT_TRUE(Satisfies(result->repair, named.parsed.fds))
            << named.name << " " << name;
        // The reported lower bound must never exceed the true optimum, and
        // the repair must sit within the certified ratio of it.
        EXPECT_LE(result->lower_bound, optimal_distance + 1e-9)
            << named.name << " " << name;
        EXPECT_LE(result->distance,
                  result->ratio_bound * optimal_distance + 1e-9)
            << named.name << " " << name;
        EXPECT_LE(result->distance,
                  result->achieved_ratio * result->lower_bound + 1e-9)
            << named.name << " " << name;
        EXPECT_GE(result->distance, optimal_distance - 1e-9)
            << named.name << " " << name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendPropertyTest,
                         ::testing::Values(7, 77, 777));

TEST(VcLpTest, BoundsSandwichOnRandomGraphs) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 6 + static_cast<int>(rng.UniformUint64(10));
    const int m = n + static_cast<int>(rng.UniformUint64(2 * n));
    NodeWeightedGraph graph = RandomGraph(n, m, &rng);
    for (int v = 0; v < n; ++v) {
      graph.set_weight(v, 1.0 + static_cast<double>(rng.UniformUint64(5)));
    }
    const double optimum = OptimalCoverWeight(graph);
    const VcLpSolution lp = SolveVcLp(graph);
    // dual ascent <= LP optimum <= integral optimum.
    EXPECT_LE(VcDualAscentBound(graph), lp.value + 1e-9);
    EXPECT_LE(lp.value, optimum + 1e-9);
    // Half-integrality: every x is 0, 1/2 or 1 and covers each edge.
    for (double x : lp.x) {
      EXPECT_TRUE(x == 0.0 || x == 0.5 || x == 1.0) << x;
    }
    for (const auto& [u, v] : graph.edges()) {
      EXPECT_GE(lp.x[u] + lp.x[v], 1.0 - 1e-9);
    }
    // NT persistency: opt(G) = w(ones) + opt(G[halves]).
    std::vector<int> kernel_id(n, -1);
    NodeWeightedGraph kernel(static_cast<int>(lp.halves.size()));
    for (int i = 0; i < static_cast<int>(lp.halves.size()); ++i) {
      kernel_id[lp.halves[i]] = i;
      kernel.set_weight(i, graph.weight(lp.halves[i]));
    }
    for (const auto& [u, v] : graph.edges()) {
      if (kernel_id[u] >= 0 && kernel_id[v] >= 0) {
        kernel.AddEdge(kernel_id[u], kernel_id[v]);
      }
    }
    EXPECT_NEAR(graph.WeightOf(lp.ones) + OptimalCoverWeight(kernel), optimum,
                1e-9)
        << "trial " << trial;
  }
}

TEST(SolverBackendTest, GraphCoversValidAndBoundedOnRandomGraphs) {
  Rng rng(29);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformUint64(10));
    NodeWeightedGraph graph = RandomBoundedDegreeGraph(n, 4, 0.4, &rng);
    for (int v = 0; v < n; ++v) {
      graph.set_weight(v, 1.0 + static_cast<double>(rng.UniformUint64(4)));
    }
    const double optimum = OptimalCoverWeight(graph);
    for (const SolverBackend* backend : AllSolverBackends()) {
      auto cover = backend->SolveCover(graph, NoLimits());
      ASSERT_TRUE(cover.ok()) << backend->name();
      EXPECT_TRUE(IsVertexCover(graph, cover->cover)) << backend->name();
      EXPECT_NEAR(cover->weight, graph.WeightOf(cover->cover), 1e-9);
      EXPECT_LE(cover->lower_bound, optimum + 1e-9) << backend->name();
      EXPECT_LE(cover->weight, cover->ratio_bound * optimum + 1e-9)
          << backend->name();
      if (backend->exact()) {
        EXPECT_TRUE(cover->optimal) << backend->name();
        EXPECT_NEAR(cover->weight, optimum, 1e-9) << backend->name();
      }
      if (cover->optimal) {
        EXPECT_NEAR(cover->weight, cover->lower_bound, 1e-9)
            << backend->name();
      }
    }
  }
}

TEST(SolverBackendTest, ExpiredDeadlineStillReturnsValidIncumbent) {
  Rng rng(31);
  NodeWeightedGraph graph = RandomGraph(30, 80, &rng);
  SolverExec exec;
  exec.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  for (const char* name : {kSolverBnb, kSolverIlp}) {
    auto cover = FindSolverBackend(name)->SolveCover(graph, exec);
    ASSERT_TRUE(cover.ok()) << name;
    EXPECT_FALSE(cover->optimal) << name;
    EXPECT_TRUE(IsVertexCover(graph, cover->cover)) << name;
    EXPECT_LE(cover->lower_bound, cover->weight + 1e-9) << name;
  }
}

TEST(SolverBackendTest, NodeBudgetTruncatesSearch) {
  // C9: an odd cycle — the LP is all-halves (no NT fixing), reductions
  // never fire (every neighborhood outweighs its center), so the search
  // must branch and a one-node budget cannot finish.
  NodeWeightedGraph graph(9);
  for (int v = 0; v < 9; ++v) graph.AddEdge(v, (v + 1) % 9);
  SolverExec exec;
  exec.node_budget = 1;
  auto cover = FindSolverBackend(kSolverIlp)->SolveCover(graph, exec);
  ASSERT_TRUE(cover.ok());
  EXPECT_FALSE(cover->optimal);
  EXPECT_TRUE(IsVertexCover(graph, cover->cover));
  // The truncated answer keeps the a-priori local-ratio guarantee and the
  // LP certificate: C9's LP value is 4.5, its optimum 5.
  EXPECT_NEAR(cover->lower_bound, 4.5, 1e-9);
  EXPECT_LE(cover->weight, 2.0 * 5.0 + 1e-9);

  SolverExec open;
  auto full = FindSolverBackend(kSolverIlp)->SolveCover(graph, open);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->optimal);
  EXPECT_NEAR(full->weight, 5.0, 1e-9);
}

TEST(SolverPlannerTest, ExactOnlyReportsBudgetExhaustion) {
  // A hard-side instance small enough for the bnb route whose search needs
  // more than one node: kExactOnly must refuse rather than return the
  // incumbent.
  Rng rng(17);
  ParsedFdSet parsed = DeltaAtoBtoC();
  RandomTableOptions table_options;
  table_options.num_tuples = 30;
  table_options.domain_size = 2;
  Table table = RandomTable(parsed.schema, table_options, &rng);
  SRepairOptions options;
  options.strategy = SRepairStrategy::kExactOnly;
  options.node_budget = 1;
  auto result = ComputeSRepair(parsed.fds, table, options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  options.node_budget = -1;
  auto full = ComputeSRepair(parsed.fds, table, options);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->optimal);
}

TEST(SolverPlannerTest, MaxRatioGatesCertifiedQuality) {
  ParsedFdSet parsed = DeltaAtoBtoC();
  Table table = RhsTriangle(parsed);
  // Fused local-ratio on the 3-clique: distance 2 against a burn of 1 — a
  // certified ratio of exactly 2.
  SRepairOptions approx;
  approx.strategy = SRepairStrategy::kApproxOnly;
  auto loose = ComputeSRepair(parsed.fds, table, approx);
  ASSERT_TRUE(loose.ok());
  EXPECT_DOUBLE_EQ(loose->distance, 2.0);
  EXPECT_DOUBLE_EQ(loose->lower_bound, 1.0);
  EXPECT_DOUBLE_EQ(loose->achieved_ratio, 2.0);
  EXPECT_EQ(loose->backend, kSolverLocalRatio);

  approx.max_ratio = 1.5;
  auto gated = ComputeSRepair(parsed.fds, table, approx);
  EXPECT_EQ(gated.status().code(), StatusCode::kResourceExhausted);

  // The exact backend certifies ratio 1 and passes the same gate.
  SRepairOptions exact;
  exact.backend = kSolverIlp;
  exact.max_ratio = 1.5;
  auto proved = ComputeSRepair(parsed.fds, table, exact);
  ASSERT_TRUE(proved.ok());
  EXPECT_TRUE(proved->optimal);
  EXPECT_DOUBLE_EQ(proved->distance, 2.0);
  EXPECT_EQ(proved->backend, kSolverIlp);
  EXPECT_EQ(proved->algorithm, SRepairAlgorithm::kIlpBranchAndBound);
}

TEST(SolverPlannerTest, IlpProvesOptimalityFarBeyondExactGuard) {
  // The headline capability: a hard-side instance whose conflicted core is
  // >= 3x the historical exact_guard of 40, proved optimal by the ILP
  // backend through the kAuto route.
  Rng rng(23);
  ParsedFdSet parsed = DeltaAtoBtoC();
  PlantedTableOptions planted;
  planted.num_tuples = 400;
  planted.num_entities = 60;
  planted.corruptions = 120;
  planted.heavy_fraction = 0.3;
  Table table = PlantedDirtyTable(parsed.schema, parsed.fds, planted, &rng);
  ASSERT_GE(ConflictedCoreSize(parsed.fds, table), 120);

  auto result = ComputeSRepair(parsed.fds, table);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->algorithm, SRepairAlgorithm::kIlpBranchAndBound);
  EXPECT_EQ(result->backend, kSolverIlp);
  EXPECT_TRUE(result->optimal);
  EXPECT_NEAR(result->lower_bound, result->distance, 1e-9);
  EXPECT_DOUBLE_EQ(result->ratio_bound, 1.0);
  EXPECT_TRUE(Satisfies(result->repair, parsed.fds));

  // The proved optimum is sharper than (or ties) the 2-approximation.
  SRepairOptions approx;
  approx.strategy = SRepairStrategy::kApproxOnly;
  auto baseline = ComputeSRepair(parsed.fds, table, approx);
  ASSERT_TRUE(baseline.ok());
  EXPECT_LE(result->distance, baseline->distance + 1e-9);
  EXPECT_GE(result->distance, baseline->lower_bound - 1e-9);
}

}  // namespace
}  // namespace fdrepair
