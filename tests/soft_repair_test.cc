// Soft (weighted) FDs end to end: the parser's @weight grammar, the
// weight-preserving canonical cover, the ω ≡ ∞ pin (soft with all-hard
// weights is bit-identical to the subset pipeline — the tentpole property),
// brute-force agreement of the soft planner, cost monotonicity in weights,
// and the serving layer's unified RepairOptions validation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "catalog/fd_parser.h"
#include "common/random.h"
#include "service/repair_service.h"
#include "srepair/planner.h"
#include "srepair/soft_repair.h"
#include "srepair/solver_backend.h"
#include "storage/consistency.h"
#include "storage/table_view.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

RepairRequest Request(RepairMode mode, const FdSet& fds, const Table* table) {
  RepairRequest request;
  request.mode = mode;
  request.fds = fds;
  request.table = table;
  return request;
}

void ExpectSameRepair(const Table& a, const Table& b,
                      const std::string& label) {
  ASSERT_EQ(a.num_tuples(), b.num_tuples()) << label;
  for (int row = 0; row < a.num_tuples(); ++row) {
    EXPECT_EQ(a.id(row), b.id(row)) << label << " row " << row;
  }
}

// --------------------------------------------------------------------------
// Parser: the '@weight' suffix.
// --------------------------------------------------------------------------

TEST(SoftFdParseTest, WeightSuffixMarksFdsSoft) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  FdSet fds = ParseFdSetOrDie(schema, "A -> B @2.5; B -> C");
  ASSERT_EQ(fds.size(), 2);
  EXPECT_TRUE(fds.HasSoftFds());
  ASSERT_EQ(fds.SoftPart().size(), 1);
  EXPECT_DOUBLE_EQ(fds.SoftPart().fds()[0].weight, 2.5);
  EXPECT_EQ(fds.HardPart().size(), 1);
}

TEST(SoftFdParseTest, InfAndHardSpellingsStayHard) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  FdSet plain = ParseFdSetOrDie(schema, "A -> B; B -> C");
  FdSet inf = ParseFdSetOrDie(schema, "A -> B @inf; B -> C @hard");
  EXPECT_EQ(plain, inf);
  EXPECT_FALSE(inf.HasSoftFds());
}

TEST(SoftFdParseTest, WeightDistributesOverMultiRhs) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  FdSet fds = ParseFdSetOrDie(schema, "A -> B C @2");
  ASSERT_EQ(fds.size(), 2);
  for (const Fd& fd : fds.fds()) EXPECT_DOUBLE_EQ(fd.weight, 2.0);
}

// --------------------------------------------------------------------------
// Canonical cover: weight-preserving reductions only.
// --------------------------------------------------------------------------

TEST(SoftCanonicalCoverTest, ExactDuplicateSoftWeightsAdd) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B"});
  FdSet fds = ParseFdSetOrDie(schema, "A -> B @2; A -> B @3");
  ASSERT_EQ(fds.size(), 1);
  EXPECT_DOUBLE_EQ(fds.fds()[0].weight, 5.0);
}

TEST(SoftCanonicalCoverTest, HardCopyDominatesSoftDuplicate) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B"});
  FdSet fds = ParseFdSetOrDie(schema, "A -> B @2; A -> B");
  ASSERT_EQ(fds.size(), 1);
  EXPECT_TRUE(fds.fds()[0].IsHard());
}

TEST(SoftCanonicalCoverTest, SoftEntailedByHardCoverIsDropped) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  // A -> C is entailed by the hard part {A -> B, B -> C}: any pair
  // violating it violates a hard FD, so its penalty can never be paid.
  FdSet fds = ParseFdSetOrDie(schema, "A -> B; B -> C; A -> C @1.5");
  FdSet cover = fds.CanonicalCover();
  EXPECT_FALSE(cover.HasSoftFds());
  EXPECT_EQ(cover, ParseFdSetOrDie(schema, "A -> B; B -> C"));
}

TEST(SoftCanonicalCoverTest, TrivialSoftFdIsDropped) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B"});
  FdSet fds = ParseFdSetOrDie(schema, "A B -> B @2; A -> B");
  FdSet cover = fds.CanonicalCover();
  EXPECT_FALSE(cover.HasSoftFds());
}

TEST(SoftCanonicalCoverTest, SoftFdsAreNeverLhsReduced) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  // Hard canonicalization would strip the extraneous B from "A B -> C"
  // given A -> B; the soft copy must keep its phrasing — it charges
  // different tuple pairs than "A -> C @2" would.
  FdSet fds = ParseFdSetOrDie(schema, "A -> B; A B -> C @2");
  FdSet cover = fds.CanonicalCover();
  ASSERT_EQ(cover.SoftPart().size(), 1);
  EXPECT_EQ(cover.SoftPart().fds()[0].lhs.size(), 2);
}

TEST(SoftCanonicalCoverTest, WithWeightsValidatesSizeAndPositivity) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  FdSet fds = ParseFdSetOrDie(schema, "A -> B; B -> C");
  EXPECT_FALSE(fds.WithWeights({1.0}).ok());
  EXPECT_FALSE(fds.WithWeights({1.0, -2.0}).ok());
  EXPECT_FALSE(fds.WithWeights({0.0, 1.0}).ok());
  auto weighted = fds.WithWeights({2.0, kHardFdWeight});
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(weighted->SoftPart().size(), 1);
  EXPECT_EQ(weighted->HardPart().size(), 1);
}

// --------------------------------------------------------------------------
// The ω ≡ ∞ pin: soft repair with every weight infinite IS the subset
// planner, bit for bit — across FD sets, thread hints, and backends.
// --------------------------------------------------------------------------

class SoftPinTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoftPinTest, AllHardComputeSoftRepairMatchesComputeSRepair) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions options;
    options.num_tuples = 12;
    options.domain_size = 3;
    options.heavy_fraction = 0.4;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);

    auto hard = ComputeSRepair(named.parsed.fds, table);
    ASSERT_TRUE(hard.ok()) << named.name;
    auto soft = ComputeSoftRepair(named.parsed.fds, table);
    ASSERT_TRUE(soft.ok()) << named.name;
    ExpectSameRepair(soft->repair, hard->repair, named.name);
    EXPECT_NEAR(soft->cost, hard->distance, 1e-12) << named.name;
    EXPECT_DOUBLE_EQ(soft->violation_cost, 0) << named.name;
    EXPECT_EQ(soft->optimal, hard->optimal) << named.name;

    // Re-weighting every FD to ∞ explicitly is the same thing.
    std::vector<double> all_inf(named.parsed.fds.size(), kHardFdWeight);
    auto pinned_fds = named.parsed.fds.WithWeights(all_inf);
    ASSERT_TRUE(pinned_fds.ok()) << named.name;
    auto pinned = ComputeSoftRepair(*pinned_fds, table);
    ASSERT_TRUE(pinned.ok()) << named.name;
    ExpectSameRepair(pinned->repair, hard->repair, named.name);
  }
}

TEST_P(SoftPinTest, ServiceSoftModeAllHardIsBitIdenticalToSubsetMode) {
  Rng rng(GetParam() + 1);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions toptions;
    toptions.num_tuples = 12;
    toptions.domain_size = 3;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, toptions, &table_rng);
    for (int threads : {1, 2, 8}) {
      for (const char* backend : {"", kSolverLocalRatio, kSolverBnb}) {
        RepairService service;
        RepairRequest subset =
            Request(RepairMode::kSubset, named.parsed.fds, &table);
        subset.options.threads = threads;
        subset.options.backend = backend;
        RepairRequest soft =
            Request(RepairMode::kSoft, named.parsed.fds, &table);
        soft.options.threads = threads;
        soft.options.backend = backend;
        // An all-∞ profile must serve identically to no profile.
        soft.options.soft_weights.assign(named.parsed.fds.size(),
                                         kHardFdWeight);

        std::string label = named.name + " threads=" +
                            std::to_string(threads) + " backend=" + backend;
        auto subset_response = service.Serve(subset);
        ASSERT_TRUE(subset_response.ok())
            << label << ": " << subset_response.status();
        auto soft_response = service.Serve(soft);
        ASSERT_TRUE(soft_response.ok())
            << label << ": " << soft_response.status();
        ExpectSameRepair(soft_response->repair, subset_response->repair,
                         label);
        EXPECT_NEAR(soft_response->distance, subset_response->distance,
                    1e-12)
            << label;
        EXPECT_EQ(soft_response->route, "soft[" + subset_response->route + "]")
            << label;
        EXPECT_NE(soft_response->cache_key, subset_response->cache_key)
            << label << ": modes must never share a cache entry";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftPinTest,
                         ::testing::Values(101, 202, 303));

// --------------------------------------------------------------------------
// Soft planner correctness against exhaustive search.
// --------------------------------------------------------------------------

/// min over subsets J satisfying the hard part of: deleted weight +
/// soft-violation cost of J.
double BruteForceSoftCost(const FdSet& fds, const Table& table) {
  const FdSet hard = fds.HardPart();
  int n = table.num_tuples();
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    std::vector<int> rows;
    double deleted = 0;
    for (int row = 0; row < n; ++row) {
      if ((mask >> row) & 1) {
        rows.push_back(row);
      } else {
        deleted += table.weight(row);
      }
    }
    Table subset = table.SubsetByRows(rows);
    if (!Satisfies(subset, hard)) continue;
    double cost = deleted + SoftViolationCost(fds, TableView(subset));
    if (cost < best) best = cost;
  }
  return best;
}

class SoftOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoftOracleTest, MatchesBruteForceOnMixedWeightSets) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    // Alternate finite and infinite weights over the set's FDs.
    std::vector<double> weights;
    for (int i = 0; i < named.parsed.fds.size(); ++i) {
      weights.push_back(i % 2 == 0 ? 0.75 + 0.5 * i : kHardFdWeight);
    }
    auto weighted = named.parsed.fds.WithWeights(weights);
    ASSERT_TRUE(weighted.ok()) << named.name;
    for (int trial = 0; trial < 3; ++trial) {
      RandomTableOptions options;
      options.num_tuples = 9;
      options.domain_size = 2;
      options.heavy_fraction = 0.3;
      Rng table_rng = rng.Fork();
      Table table = RandomTable(named.parsed.schema, options, &table_rng);
      auto result = ComputeSoftRepair(*weighted, table);
      ASSERT_TRUE(result.ok()) << named.name << ": " << result.status();
      EXPECT_TRUE(Satisfies(result->repair, weighted->HardPart()))
          << named.name;
      EXPECT_NEAR(result->cost,
                  result->deleted_weight + result->violation_cost, 1e-9)
          << named.name;
      double oracle = BruteForceSoftCost(*weighted, table);
      if (result->optimal) {
        EXPECT_NEAR(result->cost, oracle, 1e-9)
            << named.name << " trial " << trial << "\n" << table.ToString();
      } else {
        EXPECT_GE(result->cost, oracle - 1e-9) << named.name;
        EXPECT_LE(result->cost, result->ratio_bound * oracle + 1e-9)
            << named.name;
      }
    }
  }
}

TEST_P(SoftOracleTest, SoftCostNeverExceedsHardOptimum) {
  // Keeping the hard-optimal repair is always feasible for the soft
  // objective (zero violations), so the soft optimum is at most the hard
  // one — softening constraints can only help.
  Rng rng(GetParam() + 7);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    std::vector<double> weights(named.parsed.fds.size(), 1.25);
    auto weighted = named.parsed.fds.WithWeights(weights);
    ASSERT_TRUE(weighted.ok()) << named.name;
    RandomTableOptions options;
    options.num_tuples = 10;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    auto hard = ComputeSRepair(named.parsed.fds, table);
    ASSERT_TRUE(hard.ok()) << named.name;
    auto soft = ComputeSoftRepair(*weighted, table);
    ASSERT_TRUE(soft.ok()) << named.name;
    if (soft->optimal && hard->optimal) {
      EXPECT_LE(soft->cost, hard->distance + 1e-9) << named.name;
    }
  }
}

TEST_P(SoftOracleTest, RaisingAViolatedWeightNeverDecreasesCost) {
  // The objective is pointwise non-decreasing in every ω, so the optimal
  // cost is monotone in each weight.
  Rng rng(GetParam() + 13);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions options;
    options.num_tuples = 9;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    for (int target = 0; target < named.parsed.fds.size(); ++target) {
      std::vector<double> low(named.parsed.fds.size(), kHardFdWeight);
      low[target] = 0.5;
      std::vector<double> high = low;
      high[target] = 2.0;
      auto low_fds = named.parsed.fds.WithWeights(low);
      auto high_fds = named.parsed.fds.WithWeights(high);
      ASSERT_TRUE(low_fds.ok() && high_fds.ok()) << named.name;
      auto low_result = ComputeSoftRepair(*low_fds, table);
      auto high_result = ComputeSoftRepair(*high_fds, table);
      ASSERT_TRUE(low_result.ok()) << named.name << low_result.status();
      ASSERT_TRUE(high_result.ok()) << named.name << high_result.status();
      if (!low_result->optimal || !high_result->optimal) continue;
      EXPECT_GE(high_result->cost, low_result->cost - 1e-9)
          << named.name << " fd " << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftOracleTest,
                         ::testing::Values(404, 505, 606));

// --------------------------------------------------------------------------
// Soft mode through the serving layer: finite weights, caching, keying.
// --------------------------------------------------------------------------

TEST(SoftServiceTest, FiniteWeightsServeAndReplayBitIdentically) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B"});
  FdSet fds = ParseFdSetOrDie(schema, "A -> B @0.25");
  Table table(schema);
  // Two cheap conflicting pairs: deleting costs 1 per tuple, keeping a
  // violated pair costs 0.25 — the soft optimum keeps everything.
  table.AddTuple({"a", "x"}, 1.0);
  table.AddTuple({"a", "y"}, 1.0);
  table.AddTuple({"b", "x"}, 1.0);
  table.AddTuple({"b", "z"}, 1.0);
  RepairService service;
  RepairRequest request = Request(RepairMode::kSoft, fds, &table);
  auto miss = service.Serve(request);
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->cache_hit);
  EXPECT_EQ(miss->repair.num_tuples(), 4);
  EXPECT_NEAR(miss->distance, 0.5, 1e-12);  // two violated pairs à 0.25
  EXPECT_TRUE(miss->optimal);
  auto direct = ComputeSoftRepair(fds, table);
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(direct->cost, miss->distance, 1e-12);

  auto hit = service.Serve(request);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->cache_key, miss->cache_key);
  ASSERT_EQ(hit->repair.num_tuples(), miss->repair.num_tuples());
  for (int row = 0; row < hit->repair.num_tuples(); ++row) {
    EXPECT_EQ(hit->repair.id(row), miss->repair.id(row));
  }
}

TEST(SoftServiceTest, WeightProfilesKeySeparately) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B"});
  FdSet fds = ParseFdSetOrDie(schema, "A -> B");
  Table table(schema);
  table.AddTuple({"a", "x"}, 1.0);
  table.AddTuple({"a", "y"}, 3.0);
  RepairService service;

  RepairRequest cheap = Request(RepairMode::kSoft, fds, &table);
  cheap.options.soft_weights = {0.5};  // keep both, pay 0.5
  RepairRequest dear = Request(RepairMode::kSoft, fds, &table);
  dear.options.soft_weights = {10.0};  // delete the light tuple, pay 1

  auto cheap_response = service.Serve(cheap);
  auto dear_response = service.Serve(dear);
  ASSERT_TRUE(cheap_response.ok() && dear_response.ok());
  EXPECT_NE(cheap_response->cache_key, dear_response->cache_key);
  EXPECT_FALSE(dear_response->cache_hit);
  EXPECT_NEAR(cheap_response->distance, 0.5, 1e-12);
  EXPECT_EQ(cheap_response->repair.num_tuples(), 2);
  EXPECT_NEAR(dear_response->distance, 1.0, 1e-12);
  EXPECT_EQ(dear_response->repair.num_tuples(), 1);
}

// --------------------------------------------------------------------------
// The central validator: every mode/option mismatch fails with
// kInvalidArgument before any work happens.
// --------------------------------------------------------------------------

class SoftValidationTest : public ::testing::Test {
 protected:
  SoftValidationTest()
      : schema_(Schema::MakeOrDie("R", {"A", "B"})),
        fds_(ParseFdSetOrDie(schema_, "A -> B")),
        table_(schema_) {
    table_.AddTuple({"a", "x"}, 1.0);
    table_.AddTuple({"a", "y"}, 1.0);
  }

  Schema schema_;
  FdSet fds_;
  Table table_;
  RepairService service_;
};

TEST_F(SoftValidationTest, SoftWeightsRejectedOutsideSoftMode) {
  RepairRequest request = Request(RepairMode::kSubset, fds_, &table_);
  request.options.soft_weights = {2.0};
  auto response = service_.Serve(request);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SoftValidationTest, SoftFdsRejectedOutsideSoftMode) {
  FdSet soft = ParseFdSetOrDie(schema_, "A -> B @2");
  for (RepairMode mode : {RepairMode::kSubset, RepairMode::kUpdate}) {
    RepairRequest request = Request(mode, soft, &table_);
    auto response = service_.Serve(request);
    EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument)
        << RepairModeToString(mode);
  }
}

TEST_F(SoftValidationTest, WrongSizeWeightProfileRejected) {
  RepairRequest request = Request(RepairMode::kSoft, fds_, &table_);
  request.options.soft_weights = {1.0, 2.0};  // fds has one FD
  auto response = service_.Serve(request);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SoftValidationTest, NonSoftCapableBackendRejectedOnSoftCore) {
  FdSet soft = ParseFdSetOrDie(schema_, "A -> B @2");
  RepairRequest request = Request(RepairMode::kSoft, soft, &table_);
  request.options.backend = kSolverLpRounding;
  auto response = service_.Serve(request);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SoftValidationTest, UnknownBackendRejected) {
  RepairRequest request = Request(RepairMode::kSubset, fds_, &table_);
  request.options.backend = "no-such-solver";
  auto response = service_.Serve(request);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SoftValidationTest, BackendAndMaxRatioRejectedInUpdateMode) {
  RepairRequest with_backend = Request(RepairMode::kUpdate, fds_, &table_);
  with_backend.options.backend = kSolverBnb;
  EXPECT_EQ(service_.Serve(with_backend).status().code(),
            StatusCode::kInvalidArgument);
  RepairRequest with_ratio = Request(RepairMode::kUpdate, fds_, &table_);
  with_ratio.options.max_ratio = 2.0;
  EXPECT_EQ(service_.Serve(with_ratio).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SoftValidationTest, LegacyAndOptionsConflictRejected) {
  RepairRequest request = Request(RepairMode::kSubset, fds_, &table_);
  request.backend = kSolverBnb;          // deprecated flat field
  request.options.backend = kSolverIlp;  // disagreeing options field
  EXPECT_EQ(service_.Serve(request).status().code(),
            StatusCode::kInvalidArgument);

  RepairRequest threads = Request(RepairMode::kSubset, fds_, &table_);
  threads.threads = 1;
  threads.options.threads = 2;
  EXPECT_EQ(service_.Serve(threads).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SoftValidationTest, LegacyFieldsStillForward) {
  RepairRequest request = Request(RepairMode::kSubset, fds_, &table_);
  request.backend = kSolverBnb;  // deprecated flat field, no conflict
  auto response = service_.Serve(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->backend, kSolverBnb);
}

TEST_F(SoftValidationTest, DeltaWithBypassCacheRejectedExplicitly) {
  // Incremental replay is defined by cached state; silently ignoring the
  // combination (the historical behavior) masked caller bugs.
  TableDelta delta;
  delta.base_hash = 1;
  delta.result_hash = 2;
  RepairRequest request = Request(RepairMode::kSubset, fds_, &table_);
  request.delta = &delta;
  request.options.bypass_cache = true;
  auto response = service_.Serve(request);
  ASSERT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response.status().message().find("bypass_cache"),
            std::string::npos);
}

TEST_F(SoftValidationTest, DeltaRejectedInSoftMode) {
  TableDelta delta;
  delta.base_hash = 1;
  delta.result_hash = 2;
  RepairRequest request = Request(RepairMode::kSoft, fds_, &table_);
  request.delta = &delta;
  auto response = service_.Serve(request);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SoftValidationTest, NegativeKnobsRejected) {
  RepairRequest ratio = Request(RepairMode::kSubset, fds_, &table_);
  ratio.options.max_ratio = -1.0;
  EXPECT_EQ(service_.Serve(ratio).status().code(),
            StatusCode::kInvalidArgument);
  RepairRequest threads = Request(RepairMode::kSubset, fds_, &table_);
  threads.options.threads = -2;
  EXPECT_EQ(service_.Serve(threads).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fdrepair
