// Tests for Schema, Fd and the FD parser.

#include <gtest/gtest.h>

#include "catalog/fd_parser.h"
#include "catalog/schema.h"

namespace fdrepair {
namespace {

TEST(SchemaTest, MakeValid) {
  auto schema = Schema::Make("Office", {"facility", "room", "floor", "city"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->arity(), 4);
  EXPECT_EQ(schema->relation_name(), "Office");
  EXPECT_EQ(schema->AttributeName(2), "floor");
  EXPECT_EQ(*schema->AttributeId("city"), 3);
  EXPECT_TRUE(schema->HasAttribute("room"));
  EXPECT_FALSE(schema->HasAttribute("wing"));
}

TEST(SchemaTest, RejectsBadInputs) {
  EXPECT_FALSE(Schema::Make("R", {}).ok());
  EXPECT_FALSE(Schema::Make("R", {"A", "A"}).ok());
  EXPECT_FALSE(Schema::Make("R", {"A", ""}).ok());
  std::vector<std::string> too_many;
  for (int i = 0; i < 65; ++i) too_many.push_back("A" + std::to_string(i));
  EXPECT_FALSE(Schema::Make("R", too_many).ok());
}

TEST(SchemaTest, AnonymousNames) {
  Schema schema = Schema::Anonymous(4);
  EXPECT_EQ(schema.AttributeName(0), "A");
  EXPECT_EQ(schema.AttributeName(3), "D");
  Schema wide = Schema::Anonymous(28);
  EXPECT_EQ(wide.AttributeName(26), "A27");
}

TEST(SchemaTest, NamesOfRendersSetsInOrder) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  EXPECT_EQ(schema.NamesOf(AttrSet::Of({0, 2})), "A C");
  EXPECT_EQ(schema.NamesOf(AttrSet()), "∅");
  EXPECT_EQ(schema.ToString(), "R(A, B, C)");
}

TEST(FdTest, TrivialAndConsensus) {
  Fd trivial(AttrSet::Of({0, 1}), 1);
  EXPECT_TRUE(trivial.IsTrivial());
  EXPECT_FALSE(trivial.IsConsensus());
  Fd consensus(AttrSet(), 2);
  EXPECT_TRUE(consensus.IsConsensus());
  EXPECT_FALSE(consensus.IsTrivial());
  Fd normal(AttrSet::Of({0}), 1);
  EXPECT_FALSE(normal.IsTrivial());
  EXPECT_EQ(normal.Attrs(), AttrSet::Of({0, 1}));
}

TEST(FdTest, Rendering) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  EXPECT_EQ(Fd(AttrSet::Of({0, 1}), 2).ToString(schema), "A B -> C");
  EXPECT_EQ(Fd(AttrSet(), 0).ToString(schema), "{} -> A");
}

TEST(FdParserTest, BasicForms) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C", "D"});
  FdSet fds = ParseFdSetOrDie(schema, "A B -> C ; C -> D");
  ASSERT_EQ(fds.size(), 2);
  // Canonical order sorts by lhs bitmask: {A,B} (0b011) before {C} (0b100).
  EXPECT_EQ(fds.fds()[0], Fd(AttrSet::Of({0, 1}), 2));
  EXPECT_EQ(fds.fds()[1], Fd(AttrSet::Of({2}), 3));
}

TEST(FdParserTest, MultiRhsNormalized) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  FdSet fds = ParseFdSetOrDie(schema, "A -> B C");
  EXPECT_EQ(fds.size(), 2);
  EXPECT_TRUE(fds.Entails(Fd(AttrSet::Of({0}), 1)));
  EXPECT_TRUE(fds.Entails(Fd(AttrSet::Of({0}), 2)));
}

TEST(FdParserTest, ConsensusForms) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B"});
  for (const char* text : {"{} -> A", "-> A"}) {
    FdSet fds = ParseFdSetOrDie(schema, text);
    ASSERT_EQ(fds.size(), 1);
    EXPECT_TRUE(fds.fds()[0].IsConsensus());
  }
}

TEST(FdParserTest, CommasNewlinesAndDuplicates) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B", "C"});
  FdSet fds = ParseFdSetOrDie(schema, "A, B -> C\nA B -> C;");
  EXPECT_EQ(fds.size(), 1);  // deduplicated
}

TEST(FdParserTest, Errors) {
  Schema schema = Schema::MakeOrDie("R", {"A", "B"});
  EXPECT_FALSE(ParseFdSet(schema, "A B").ok());          // no arrow
  EXPECT_FALSE(ParseFdSet(schema, "A -> B -> A").ok());  // double arrow
  EXPECT_FALSE(ParseFdSet(schema, "A -> ").ok());        // empty rhs
  EXPECT_FALSE(ParseFdSet(schema, "A -> Z").ok());       // unknown attr
}

TEST(FdParserTest, InferSchemaOrdersByAppearance) {
  ParsedFdSet parsed =
      ParseFdSetInferSchemaOrDie("facility -> city; facility room -> floor");
  EXPECT_EQ(parsed.schema.AttributeName(0), "facility");
  EXPECT_EQ(parsed.schema.AttributeName(1), "city");
  EXPECT_EQ(parsed.schema.AttributeName(2), "room");
  EXPECT_EQ(parsed.schema.AttributeName(3), "floor");
  EXPECT_EQ(parsed.fds.size(), 2);
}

TEST(FdParserTest, RoundTripThroughToString) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B; B C -> D");
  std::string rendered = parsed.fds.ToString(parsed.schema);
  FdSet reparsed = ParseFdSetOrDie(parsed.schema, rendered);
  EXPECT_EQ(reparsed, parsed.fds);
}

}  // namespace
}  // namespace fdrepair
