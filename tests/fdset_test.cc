// Tests for FdSet: closures, entailment, the structural predicates of §2.2
// and the ∆ − X operation — including the paper's worked examples.

#include <gtest/gtest.h>

#include "catalog/fd_parser.h"
#include "catalog/fdset.h"
#include "common/random.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

FdSet Parse(const Schema& schema, const char* text) {
  return ParseFdSetOrDie(schema, text);
}

TEST(FdSetTest, ClosureFixpoint) {
  Schema schema = Schema::Anonymous(4);
  FdSet fds = Parse(schema, "A -> B; B -> C");
  EXPECT_EQ(fds.Closure(AttrSet::Of({0})), AttrSet::Of({0, 1, 2}));
  EXPECT_EQ(fds.Closure(AttrSet::Of({1})), AttrSet::Of({1, 2}));
  EXPECT_EQ(fds.Closure(AttrSet::Of({3})), AttrSet::Of({3}));
  EXPECT_EQ(fds.Closure(AttrSet()), AttrSet());
}

TEST(FdSetTest, EntailmentAndEquivalence) {
  Schema schema = Schema::Anonymous(3);
  FdSet fds = Parse(schema, "A -> B; B -> C");
  EXPECT_TRUE(fds.Entails(Fd(AttrSet::Of({0}), 2)));       // A -> C
  EXPECT_FALSE(fds.Entails(Fd(AttrSet::Of({2}), 0)));      // C -> A
  EXPECT_TRUE(fds.Entails(Fd(AttrSet::Of({0, 2}), 0)));    // trivial
  FdSet equivalent = Parse(schema, "A -> B; B -> C; A -> C");
  EXPECT_TRUE(fds.EquivalentTo(equivalent));
  FdSet different = Parse(schema, "A -> B");
  EXPECT_FALSE(fds.EquivalentTo(different));
}

TEST(FdSetTest, TrivialDetection) {
  Schema schema = Schema::Anonymous(3);
  EXPECT_TRUE(FdSet().IsTrivial());
  EXPECT_TRUE(Parse(schema, "A B -> A").IsTrivial());
  EXPECT_FALSE(Parse(schema, "A -> B").IsTrivial());
  FdSet mixed = Parse(schema, "A B -> A; A -> C");
  EXPECT_FALSE(mixed.IsTrivial());
  EXPECT_EQ(mixed.WithoutTrivial().size(), 1);
}

TEST(FdSetTest, ConsensusAttrs) {
  Schema schema = Schema::Anonymous(3);
  FdSet fds = Parse(schema, "{} -> A; A -> B");
  EXPECT_EQ(fds.ConsensusAttrs(), AttrSet::Of({0, 1}));  // ∅ -> A forces B too
  EXPECT_FALSE(fds.IsConsensusFree());
  EXPECT_TRUE(Parse(schema, "A -> B").IsConsensusFree());
}

TEST(FdSetTest, CommonLhs) {
  Schema schema = Schema::Anonymous(4);
  // The running example shape: facility common to both lhs's.
  FdSet fds = Parse(schema, "A -> D; A B -> C");
  auto common = fds.FindCommonLhsAttr();
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(*common, 0);
  EXPECT_FALSE(Parse(schema, "A -> B; C -> D").FindCommonLhsAttr());
  EXPECT_FALSE(Parse(schema, "{} -> A; A -> B").FindCommonLhsAttr());
  EXPECT_FALSE(FdSet().FindCommonLhsAttr().has_value());
}

TEST(FdSetTest, FindConsensusFd) {
  Schema schema = Schema::Anonymous(3);
  auto consensus = Parse(schema, "{} -> B; A -> C").FindConsensusFd();
  ASSERT_TRUE(consensus.has_value());
  EXPECT_EQ(consensus->rhs, 1);
  EXPECT_FALSE(Parse(schema, "A -> C").FindConsensusFd());
}

TEST(FdSetTest, LhsMarriageSimple) {
  // ∆A↔B→C (equation (1)): ({A}, {B}) is an lhs marriage.
  ParsedFdSet parsed = DeltaAKeyBToC();
  auto marriage = parsed.fds.FindLhsMarriage();
  ASSERT_TRUE(marriage.has_value());
  EXPECT_EQ(marriage->x1.Union(marriage->x2), AttrSet::Of({0, 1}));
}

TEST(FdSetTest, LhsMarriageExample31) {
  // Example 3.1 ∆1: ({ssn}, {first, last}) is an lhs marriage.
  ParsedFdSet parsed = Example31Ssn();
  auto marriage = parsed.fds.FindLhsMarriage();
  ASSERT_TRUE(marriage.has_value());
  AttrId ssn = *parsed.schema.AttributeId("ssn");
  AttrId first = *parsed.schema.AttributeId("first");
  AttrId last = *parsed.schema.AttributeId("last");
  AttrSet small = marriage->x1.size() <= marriage->x2.size() ? marriage->x1
                                                             : marriage->x2;
  AttrSet large = marriage->x1.size() <= marriage->x2.size() ? marriage->x2
                                                             : marriage->x1;
  EXPECT_EQ(small, AttrSet::Of({ssn}));
  EXPECT_EQ(large, AttrSet::Of({first, last}));
}

TEST(FdSetTest, NoMarriageForChainedFds) {
  Schema schema = Schema::Anonymous(4);
  EXPECT_FALSE(Parse(schema, "A -> B; B -> C").FindLhsMarriage());
  EXPECT_FALSE(Parse(schema, "A -> B; C -> D").FindLhsMarriage().has_value());
}

TEST(FdSetTest, MinusAttrs) {
  Schema schema = Schema::Anonymous(4);
  FdSet fds = Parse(schema, "A B -> C; A -> D; C -> A");
  FdSet minus_a = fds.MinusAttrs(AttrSet::Of({0}));
  // A removed everywhere: B -> C, {} -> D survive; C -> A disappears.
  EXPECT_EQ(minus_a, Parse(schema, "B -> C; {} -> D"));
  // Removing C drops the FD with rhs C and shrinks the lhs of C -> A.
  FdSet minus_c = fds.MinusAttrs(AttrSet::Of({2}));
  EXPECT_EQ(minus_c, Parse(schema, "A -> D; {} -> A"));
}

TEST(FdSetTest, MinusAttrsMatchesExample35) {
  // {facility→city, facility room→floor} − facility = {∅→city, room→floor}.
  ParsedFdSet office = OfficeFds();
  AttrId facility = *office.schema.AttributeId("facility");
  FdSet reduced = office.fds.MinusAttrs(AttrSet::Of({facility}));
  FdSet expected = ParseFdSetOrDie(office.schema, "{} -> city; room -> floor");
  EXPECT_EQ(reduced, expected);
}

TEST(FdSetTest, ChainDetection) {
  Schema schema = Schema::Anonymous(4);
  // The running example is a chain: {facility} ⊆ {facility, room}.
  EXPECT_TRUE(Parse(schema, "A -> D; A B -> C").IsChain());
  EXPECT_TRUE(Parse(schema, "{} -> A; A -> B; A B -> C").IsChain());
  EXPECT_FALSE(Parse(schema, "A -> B; C -> D").IsChain());
  EXPECT_FALSE(Parse(schema, "A -> B; B -> C").IsChain());
  EXPECT_TRUE(FdSet().IsChain());
}

TEST(FdSetTest, LocalMinima) {
  Schema schema = Schema::Anonymous(4);
  FdSet fds = Parse(schema, "A -> B; A C -> D; B -> C");
  std::vector<Fd> minima = fds.LocalMinima();
  // {A} and {B} are minimal; {A, C} contains {A}.
  ASSERT_EQ(minima.size(), 2u);
  EXPECT_EQ(minima[0].lhs, AttrSet::Of({0}));
  EXPECT_EQ(minima[1].lhs, AttrSet::Of({1}));
}

TEST(FdSetTest, DistinctLhss) {
  Schema schema = Schema::Anonymous(4);
  FdSet fds = Parse(schema, "A -> B; A -> C; B -> D");
  EXPECT_EQ(fds.DistinctLhss().size(), 2u);
}

TEST(FdSetTest, AttributeDisjointComponents) {
  Schema schema = Schema::Anonymous(6);
  FdSet fds = Parse(schema, "A -> B C; C -> D; E -> F");
  std::vector<FdSet> components = fds.AttributeDisjointComponents();
  ASSERT_EQ(components.size(), 2u);
  // {A→BC, C→D} connect through C; {E→F} is separate.
  int sizes[2] = {components[0].size(), components[1].size()};
  EXPECT_EQ(sizes[0] + sizes[1], 4);
  for (const FdSet& component : components) {
    for (const FdSet& other : components) {
      if (&component != &other) {
        EXPECT_FALSE(component.Attrs().Intersects(other.Attrs()));
      }
    }
  }
}

TEST(FdSetTest, RestrictTo) {
  Schema schema = Schema::Anonymous(4);
  FdSet fds = Parse(schema, "A -> B; C -> D");
  EXPECT_EQ(fds.RestrictTo(AttrSet::Of({0, 1})), Parse(schema, "A -> B"));
  EXPECT_EQ(fds.RestrictTo(AttrSet::Of({0})), FdSet());
}

// Property: closure is monotone, extensive and idempotent for random sets.
class ClosurePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosurePropertyTest, ClosureLaws) {
  Rng rng(GetParam());
  Schema schema = Schema::Anonymous(6);
  for (int trial = 0; trial < 40; ++trial) {
    // Random FD set with 1..5 FDs over 6 attributes.
    std::vector<Fd> fds;
    int count = 1 + static_cast<int>(rng.UniformUint64(5));
    for (int f = 0; f < count; ++f) {
      AttrSet lhs = AttrSet::FromBits(rng.Next() & 0x3f);
      AttrId rhs = static_cast<AttrId>(rng.UniformUint64(6));
      fds.emplace_back(lhs, rhs);
    }
    FdSet delta = FdSet::FromFds(fds);
    AttrSet x = AttrSet::FromBits(rng.Next() & 0x3f);
    AttrSet y = AttrSet::FromBits(rng.Next() & 0x3f);
    AttrSet cx = delta.Closure(x);
    EXPECT_TRUE(x.IsSubsetOf(cx));                      // extensive
    EXPECT_EQ(delta.Closure(cx), cx);                   // idempotent
    if (x.IsSubsetOf(y)) {
      EXPECT_TRUE(cx.IsSubsetOf(delta.Closure(y)));     // monotone
    }
    // Every FD is entailed by its own set.
    for (const Fd& fd : delta.fds()) EXPECT_TRUE(delta.Entails(fd));
    // ∆ − X never mentions X.
    AttrSet removed = AttrSet::FromBits(rng.Next() & 0x3f);
    EXPECT_FALSE(delta.MinusAttrs(removed).Attrs().Intersects(removed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosurePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace fdrepair
