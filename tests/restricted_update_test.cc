// Tests for the §5 restriction on update repairs: values drawn only from
// the column's active domain (no fresh constants). The paper notes its
// results rely on the infinite domain; these tests quantify what changes.

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/urepair_exact.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

TEST(RestrictedUpdateTest, NoFreshValuesAppear) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"});
  table.AddTuple({"a", "y"});
  ExactURepairOptions options;
  options.active_domain_only = true;
  auto update = OptURepairExact(parsed.fds, table, options);
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(Satisfies(*update, parsed.fds));
  for (int row = 0; row < update->num_tuples(); ++row) {
    for (int attr = 0; attr < update->schema().arity(); ++attr) {
      EXPECT_FALSE(table.pool()->IsFresh(update->value(row, attr)));
    }
  }
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*update, table), 1);  // y := x
}

TEST(RestrictedUpdateTest, RestrictionCanStrictlyIncreaseOptimum) {
  // ∆ = {A → B, A → C}: two tuples agreeing on A but differing on B and C.
  // Unrestricted optimum: 1 (freshen one A cell, detaching the tuple).
  // Active-domain optimum: 2 (A can only stay 'a', so B and C must align).
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B; A -> C");
  Table table(parsed.schema);
  table.AddTuple({"a", "b1", "c1"});
  table.AddTuple({"a", "b2", "c2"});

  auto unrestricted = OptURepairExact(parsed.fds, table);
  ASSERT_TRUE(unrestricted.ok());
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*unrestricted, table), 1);

  ExactURepairOptions options;
  options.active_domain_only = true;
  auto restricted = OptURepairExact(parsed.fds, table, options);
  ASSERT_TRUE(restricted.ok());
  EXPECT_TRUE(Satisfies(*restricted, parsed.fds));
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*restricted, table), 2);
}

TEST(RestrictedUpdateTest, RestrictedAlwaysFeasibleAndDominated) {
  // A consistent active-domain update always exists (align everything with
  // one tuple), and the restricted optimum dominates the unrestricted one.
  Rng rng(5050);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    FdSet delta = named.parsed.fds.WithoutTrivial();
    if (delta.Attrs().size() > 4 || delta.empty()) continue;
    for (int trial = 0; trial < 3; ++trial) {
      RandomTableOptions options;
      options.num_tuples = 4;
      options.domain_size = 2;
      Rng table_rng = rng.Fork();
      Table table = RandomTable(named.parsed.schema, options, &table_rng);
      ExactURepairOptions restricted_options;
      restricted_options.active_domain_only = true;
      auto restricted = OptURepairExact(delta, table, restricted_options);
      ASSERT_TRUE(restricted.ok()) << named.name << ": "
                                   << restricted.status();
      EXPECT_TRUE(Satisfies(*restricted, delta)) << named.name;
      auto unrestricted = OptURepairExact(delta, table);
      ASSERT_TRUE(unrestricted.ok()) << named.name;
      EXPECT_GE(DistUpdOrDie(*restricted, table),
                DistUpdOrDie(*unrestricted, table) - 1e-9)
          << named.name;
    }
  }
}

TEST(RestrictedUpdateTest, ConsensusUnaffectedByRestriction) {
  // Plurality repairs only ever write active-domain values, so consensus
  // FDs cost the same under the restriction.
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("{} -> A");
  Table table(parsed.schema);
  table.AddTuple({"x"}, 2);
  table.AddTuple({"y"}, 1);
  table.AddTuple({"z"}, 1);
  ExactURepairOptions options;
  options.active_domain_only = true;
  auto restricted = OptURepairExact(parsed.fds, table, options);
  ASSERT_TRUE(restricted.ok());
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*restricted, table), 2);  // y, z := x
}

}  // namespace
}  // namespace fdrepair
