// Tests for the hardness gadgets: each construction's combinatorial
// equivalence, verified against exact solvers on small instances —
// Lemma A.13 (MAX-non-mixed-SAT), Lemma A.11 (triangle packing) and
// Theorem 4.10 (vertex cover for U-repairs).

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/vertex_cover.h"
#include "reductions/gadgets.h"
#include "srepair/srepair_exact.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/urepair_exact.h"
#include "workloads/graph_gen.h"
#include "workloads/sat_gen.h"

namespace fdrepair {
namespace {

// Lemma A.13: optimal S-repair size = max satisfiable clauses, when every
// clause contributes at least one tuple per variable. The reduction's kept
// count equals the satisfied-clause count only for formulas with one tuple
// selectable per clause; we check the exact equality the lemma proves:
// there is a consistent subset of size >= m iff >= m clauses are satisfiable.
class SatGadgetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatGadgetTest, OptimalRepairEqualsMaxSat) {
  Rng rng(GetParam());
  ParsedFdSet gadget = NonMixedSatGadgetFds();
  for (int trial = 0; trial < 6; ++trial) {
    NonMixedFormula formula = RandomNonMixedFormula(
        3 + static_cast<int>(rng.UniformUint64(3)),
        3 + static_cast<int>(rng.UniformUint64(4)), 2, &rng);
    Table table = NonMixedSatGadgetTable(formula);
    ASSERT_TRUE(table.IsDuplicateFree());
    ASSERT_TRUE(table.IsUnweighted());
    auto repair = OptSRepairExact(gadget.fds, table, 64);
    ASSERT_TRUE(repair.ok()) << repair.status();
    auto max_sat = MaxSatisfiableClausesExact(formula);
    ASSERT_TRUE(max_sat.ok());
    EXPECT_EQ(repair->num_tuples(), *max_sat)
        << "trial " << trial << "\n" << table.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatGadgetTest,
                         ::testing::Values(401, 402, 403));

// Lemma A.11: optimal S-repair size = maximum edge-disjoint triangles.
class TriangleGadgetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriangleGadgetTest, OptimalRepairEqualsPacking) {
  Rng rng(GetParam());
  ParsedFdSet gadget = TrianglePackingGadgetFds();
  int exercised = 0;
  for (int trial = 0; trial < 12 && exercised < 5; ++trial) {
    NodeWeightedGraph graph = RandomTripartiteGraph(4, 0.45, &rng);
    std::vector<Triangle> triangles = EnumerateTriangles(graph, 4);
    if (triangles.empty() || triangles.size() > 18) continue;
    ++exercised;
    Table table = TrianglePackingGadgetTable(triangles);
    auto repair = OptSRepairExact(gadget.fds, table, 64);
    ASSERT_TRUE(repair.ok()) << repair.status();
    auto packing = MaxEdgeDisjointTrianglesExact(graph, triangles, 4);
    ASSERT_TRUE(packing.ok());
    EXPECT_EQ(repair->num_tuples(), *packing) << "trial " << trial;
  }
  EXPECT_GE(exercised, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleGadgetTest,
                         ::testing::Values(501, 502, 503));

// Theorem 4.10 construction: the gadget table and the "vertex cover ->
// update of cost 2|E| + k" direction of the proof, executed literally.
Table BuildCoverUpdate(const NodeWeightedGraph& graph, const Table& gadget,
                       const std::vector<int>& cover) {
  std::vector<char> in_cover(graph.num_nodes(), 0);
  for (int v : cover) in_cover[v] = 1;
  Table update = gadget.Clone();
  auto name = [](int v) { return "v" + std::to_string(v); };
  for (int row = 0; row < update.num_tuples(); ++row) {
    std::string a = update.ValueText(row, 0);
    std::string b = update.ValueText(row, 1);
    std::string c = update.ValueText(row, 2);
    if (a != b) {
      // Edge tuple (u, v, 0): collapse onto the covered endpoint.
      int u = std::atoi(a.c_str() + 1);
      int v = std::atoi(b.c_str() + 1);
      int target = in_cover[u] ? u : v;
      EXPECT_TRUE(in_cover[u] || in_cover[v]);
      update.SetValue(row, 0, update.Intern(name(target)));
      update.SetValue(row, 1, update.Intern(name(target)));
    } else if (c == "1") {
      int v = std::atoi(a.c_str() + 1);
      if (in_cover[v]) update.SetValue(row, 2, update.Intern("0"));
    }
  }
  return update;
}

TEST(VertexCoverGadgetTest, CoverYieldsConsistentUpdateOfProvenCost) {
  Rng rng(88);
  ParsedFdSet gadget = VertexCoverGadgetFds();
  for (int trial = 0; trial < 5; ++trial) {
    NodeWeightedGraph graph = RandomBoundedDegreeGraph(8, 3, 0.7, &rng);
    if (graph.num_edges() == 0) continue;
    Table table = VertexCoverGadgetTable(graph);
    auto cover = MinWeightVertexCoverExact(graph);
    ASSERT_TRUE(cover.ok());
    Table update = BuildCoverUpdate(graph, table, *cover);
    EXPECT_TRUE(Satisfies(update, gadget.fds)) << "trial " << trial;
    // Each edge tuple changes exactly one cell (2|E| total); each covered
    // vertex tuple changes its C cell (k total).
    EXPECT_DOUBLE_EQ(DistUpdOrDie(update, table),
                     2.0 * graph.num_edges() + cover->size());
  }
}

TEST(VertexCoverGadgetTest, TinyGraphOptimalMatches2EPlusVc) {
  // P2 (one edge): vc = 1, so the optimal U-repair distance is 2·1 + 1 = 3.
  NodeWeightedGraph graph(2);
  graph.AddEdge(0, 1);
  ParsedFdSet gadget = VertexCoverGadgetFds();
  Table table = VertexCoverGadgetTable(graph);
  ASSERT_EQ(table.num_tuples(), 4);
  ExactURepairOptions options;
  options.max_rows = 4;
  options.max_cells = 12;
  auto exact = OptURepairExact(gadget.fds, table, options);
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_DOUBLE_EQ(DistUpdOrDie(*exact, table), 3.0);
}

TEST(VertexCoverGadgetTest, TableShape) {
  NodeWeightedGraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  Table table = VertexCoverGadgetTable(graph);
  // 2 tuples per edge + 1 per vertex.
  EXPECT_EQ(table.num_tuples(), 2 * 2 + 3);
  EXPECT_TRUE(table.IsUnweighted());
  EXPECT_TRUE(table.IsDuplicateFree());
}

}  // namespace
}  // namespace fdrepair
