// Metamorphic / invariance properties of the repair planners: facts that
// must hold for *any* correct implementation, checked across FD sets and
// random tables. These catch whole classes of bugs the example-based tests
// cannot (order dependence, weight handling, non-idempotence).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "srepair/planner.h"
#include "storage/consistency.h"
#include "storage/distance.h"
#include "urepair/planner.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

Table ShuffleRows(const Table& table, Rng* rng) {
  std::vector<int> rows(table.num_tuples());
  for (int i = 0; i < table.num_tuples(); ++i) rows[i] = i;
  rng->Shuffle(&rows);
  return table.SubsetByRows(rows);
}

Table ScaleWeights(const Table& table, double factor) {
  Table out(table.schema(), table.pool());
  for (int row = 0; row < table.num_tuples(); ++row) {
    Status status = out.AddInternedTupleWithId(table.id(row), table.tuple(row),
                                               table.weight(row) * factor);
    FDR_CHECK(status.ok());
  }
  return out;
}

class InvarianceTest : public ::testing::TestWithParam<uint64_t> {};

// The optimal S-repair distance is invariant under row permutation, and
// scales linearly with a global weight factor.
TEST_P(InvarianceTest, SRepairPermutationAndScaling) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    SRepairVerdict verdict = ClassifySRepair(named.parsed.fds);
    if (!verdict.polynomial) continue;
    RandomTableOptions options;
    options.num_tuples = 12;
    options.domain_size = 3;
    options.heavy_fraction = 0.5;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    auto base = ComputeSRepair(named.parsed.fds, table);
    ASSERT_TRUE(base.ok()) << named.name;

    Rng shuffle_rng = rng.Fork();
    Table shuffled = ShuffleRows(table, &shuffle_rng);
    auto permuted = ComputeSRepair(named.parsed.fds, shuffled);
    ASSERT_TRUE(permuted.ok()) << named.name;
    EXPECT_NEAR(base->distance, permuted->distance, 1e-9) << named.name;

    Table scaled = ScaleWeights(table, 3.5);
    auto rescaled = ComputeSRepair(named.parsed.fds, scaled);
    ASSERT_TRUE(rescaled.ok()) << named.name;
    EXPECT_NEAR(rescaled->distance, 3.5 * base->distance, 1e-6) << named.name;
  }
}

// Repairing a repair is free: both planners are idempotent.
TEST_P(InvarianceTest, RepairIdempotence) {
  Rng rng(GetParam() + 1);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    RandomTableOptions options;
    options.num_tuples = 12;
    options.domain_size = 3;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);

    SRepairOptions srepair_options;
    srepair_options.strategy = SRepairStrategy::kApproxOnly;
    auto first = ComputeSRepair(named.parsed.fds, table, srepair_options);
    ASSERT_TRUE(first.ok()) << named.name;
    auto second =
        ComputeSRepair(named.parsed.fds, first->repair, srepair_options);
    ASSERT_TRUE(second.ok()) << named.name;
    EXPECT_DOUBLE_EQ(second->distance, 0) << named.name;

    URepairOptions urepair_options;
    urepair_options.allow_exact_search = false;
    auto first_update = ComputeURepair(named.parsed.fds, table,
                                       urepair_options);
    ASSERT_TRUE(first_update.ok()) << named.name;
    auto second_update = ComputeURepair(named.parsed.fds,
                                        first_update->update,
                                        urepair_options);
    ASSERT_TRUE(second_update.ok()) << named.name;
    EXPECT_DOUBLE_EQ(second_update->distance, 0) << named.name;
  }
}

// Deleting a tuple never decreases repairability: the optimal S-repair
// distance of a subset is at most the distance on the full table.
TEST_P(InvarianceTest, SRepairMonotoneUnderDeletion) {
  Rng rng(GetParam() + 2);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    SRepairVerdict verdict = ClassifySRepair(named.parsed.fds);
    if (!verdict.polynomial) continue;
    RandomTableOptions options;
    options.num_tuples = 10;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    auto full = ComputeSRepair(named.parsed.fds, table);
    ASSERT_TRUE(full.ok()) << named.name;
    // Drop one random row.
    std::vector<int> rows;
    int dropped = static_cast<int>(rng.UniformUint64(table.num_tuples()));
    for (int i = 0; i < table.num_tuples(); ++i) {
      if (i != dropped) rows.push_back(i);
    }
    auto smaller = ComputeSRepair(named.parsed.fds, table.SubsetByRows(rows));
    ASSERT_TRUE(smaller.ok()) << named.name;
    EXPECT_LE(smaller->distance, full->distance + 1e-9) << named.name;
  }
}

// A consistent table is repaired for free, regardless of FD set or route.
TEST_P(InvarianceTest, ConsistentTablesAreFixpoints) {
  Rng rng(GetParam() + 3);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    PlantedTableOptions options;
    options.num_tuples = 20;
    options.corruptions = 0;  // consistent by construction
    Rng table_rng = rng.Fork();
    Table table = PlantedDirtyTable(named.parsed.schema, named.parsed.fds,
                                    options, &table_rng);
    ASSERT_TRUE(Satisfies(table, named.parsed.fds)) << named.name;
    SRepairOptions srepair_options;
    srepair_options.strategy = SRepairStrategy::kApproxOnly;
    auto srepair = ComputeSRepair(named.parsed.fds, table, srepair_options);
    ASSERT_TRUE(srepair.ok()) << named.name;
    EXPECT_DOUBLE_EQ(srepair->distance, 0) << named.name;
    EXPECT_EQ(srepair->repair.num_tuples(), table.num_tuples()) << named.name;
    URepairOptions urepair_options;
    urepair_options.allow_exact_search = false;
    auto urepair = ComputeURepair(named.parsed.fds, table, urepair_options);
    ASSERT_TRUE(urepair.ok()) << named.name;
    EXPECT_DOUBLE_EQ(urepair->distance, 0) << named.name;
  }
}

// Duplicate tuples reinforce each other: duplicating every tuple of a
// consistent table keeps it consistent; duplicating a dirty table exactly
// doubles the optimal deletion cost on the tractable side.
TEST_P(InvarianceTest, DuplicationDoublesOptSRepair) {
  Rng rng(GetParam() + 4);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    SRepairVerdict verdict = ClassifySRepair(named.parsed.fds);
    if (!verdict.polynomial) continue;
    RandomTableOptions options;
    options.num_tuples = 8;
    options.domain_size = 2;
    Rng table_rng = rng.Fork();
    Table table = RandomTable(named.parsed.schema, options, &table_rng);
    auto base = ComputeSRepair(named.parsed.fds, table);
    ASSERT_TRUE(base.ok()) << named.name;
    Table doubled = table.Clone();
    for (int row = 0; row < table.num_tuples(); ++row) {
      Status status = doubled.AddInternedTupleWithId(
          1000 + table.id(row), table.tuple(row), table.weight(row));
      ASSERT_TRUE(status.ok());
    }
    auto twice = ComputeSRepair(named.parsed.fds, doubled);
    ASSERT_TRUE(twice.ok()) << named.name;
    EXPECT_NEAR(twice->distance, 2.0 * base->distance, 1e-9) << named.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvarianceTest,
                         ::testing::Values(11111, 22222, 33333));

}  // namespace
}  // namespace fdrepair
