// Tests for the cover measures of §4: mlc, MFS, MCI, minimal implicants and
// the two approximation-ratio formulas — including the paper's closed-form
// values on the ∆k and ∆'k families (§4.4).

#include <gtest/gtest.h>

#include "urepair/covers.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

TEST(CoversTest, MinimumHittingSetBasics) {
  AttrSet universe = AttrSet::Of({0, 1, 2, 3});
  // {{0,1}, {1,2}, {3}} -> must pick 3 and may cover the rest with 1.
  auto hs = MinimumHittingSet(
      {AttrSet::Of({0, 1}), AttrSet::Of({1, 2}), AttrSet::Of({3})}, universe);
  ASSERT_TRUE(hs.ok());
  EXPECT_EQ(*hs, AttrSet::Of({1, 3}));
  // Empty family -> empty hitting set.
  auto empty = MinimumHittingSet({}, universe);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // Empty member -> impossible.
  EXPECT_FALSE(MinimumHittingSet({AttrSet()}, universe).ok());
}

TEST(CoversTest, MlcBasics) {
  // Common lhs: mlc = 1 ("if ∆ is nonempty and has a common lhs then
  // mlc(∆) = 1", §4).
  EXPECT_EQ(*Mlc(OfficeFds().fds), 1);
  // Two disjoint lhs's: mlc = 2.
  EXPECT_EQ(*Mlc(DeltaTwoDisjoint().fds), 2);
  // {A → B, B → A}: mlc = 2 (Proposition 4.9's remark).
  ParsedFdSet cycle = ParseFdSetInferSchemaOrDie("A -> B; B -> A");
  EXPECT_EQ(*Mlc(cycle.fds), 2);
  // Consensus FDs make the lhs cover undefined.
  ParsedFdSet consensus = ParseFdSetInferSchemaOrDie("{} -> A");
  EXPECT_FALSE(Mlc(consensus.fds).ok());
  // Empty set: 0.
  EXPECT_EQ(*Mlc(FdSet()), 0);
}

TEST(CoversTest, MfsBasics) {
  EXPECT_EQ(Mfs(DeltaABtoCtoB().fds), 2);   // AB -> C
  EXPECT_EQ(Mfs(DeltaAtoBtoC().fds), 1);
  EXPECT_EQ(Mfs(FdSet()), 0);
}

TEST(CoversTest, MinimalImplicantsExcludeTrivial) {
  // ∆'1 = {A0A1 → B0, A1A2 → B1}: B0's only nontrivial minimal implicant is
  // {A0, A1}; A0 has none.
  ParsedFdSet family = DeltaPrimeKFamily(1);
  AttrId b0 = *family.schema.AttributeId("B0");
  AttrId a0 = *family.schema.AttributeId("A0");
  AttrId a1 = *family.schema.AttributeId("A1");
  auto implicants = MinimalImplicants(family.fds, b0);
  ASSERT_TRUE(implicants.ok());
  ASSERT_EQ(implicants->size(), 1u);
  EXPECT_EQ((*implicants)[0], AttrSet::Of({a0, a1}));
  auto none = MinimalImplicants(family.fds, a0);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  auto core = MinimumCoreImplicant(family.fds, b0);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->size(), 1);
  EXPECT_TRUE(core->Contains(a0) || core->Contains(a1));
}

// §4.4: mlc(∆k) = k + 2, MFS(∆k) = k + 1, MCI(∆k) = k;
// our ratio 2(k+2) grows linearly, KL's (k+2)(2k+1) quadratically.
TEST(CoversTest, DeltaKFamilyMeasures) {
  for (int k = 1; k <= 5; ++k) {
    ParsedFdSet family = DeltaKFamily(k);
    EXPECT_EQ(*Mlc(family.fds), k + 2) << "k=" << k;
    EXPECT_EQ(Mfs(family.fds), k + 1) << "k=" << k;
    // The paper quotes MCI(∆k) = k via A0's core implicant {B1..Bk}; for
    // k = 1 attribute C's core implicant {B0, A1} is larger (size 2), so
    // the exact value is max(k, 2). The Θ(k²) claim is unaffected.
    int expected_mci = std::max(k, 2);
    EXPECT_EQ(*Mci(family.fds), expected_mci) << "k=" << k;
    EXPECT_DOUBLE_EQ(*MlcApproxRatioBound(family.fds), 2.0 * (k + 2));
    EXPECT_DOUBLE_EQ(*KlApproxRatioBound(family.fds),
                     (expected_mci + 2.0) * (2.0 * (k + 1) - 1));
  }
}

// §4.4: mlc(∆'k) = ⌈(k+1)/2⌉, MFS(∆'k) = 2, MCI(∆'k) = 1;
// our ratio grows linearly while KL's stays at (1+2)(2·2−1) = 9.
TEST(CoversTest, DeltaPrimeKFamilyMeasures) {
  for (int k = 1; k <= 6; ++k) {
    ParsedFdSet family = DeltaPrimeKFamily(k);
    EXPECT_EQ(*Mlc(family.fds), (k + 2) / 2) << "k=" << k;
    EXPECT_EQ(Mfs(family.fds), 2) << "k=" << k;
    EXPECT_EQ(*Mci(family.fds), 1) << "k=" << k;
    EXPECT_DOUBLE_EQ(*MlcApproxRatioBound(family.fds), 2.0 * ((k + 2) / 2));
    EXPECT_DOUBLE_EQ(*KlApproxRatioBound(family.fds), 9.0);
  }
}

// The core implicant of A0 in ∆k is {B1, ..., Bk} (§4.4's parenthetical).
TEST(CoversTest, DeltaKCoreImplicantOfA0) {
  ParsedFdSet family = DeltaKFamily(3);
  AttrId a0 = *family.schema.AttributeId("A0");
  auto core = MinimumCoreImplicant(family.fds, a0);
  ASSERT_TRUE(core.ok());
  AttrSet expected;
  for (int i = 1; i <= 3; ++i) {
    expected = expected.With(*family.schema.AttributeId("B" + std::to_string(i)));
  }
  EXPECT_EQ(*core, expected);
}

TEST(CoversTest, MlcDecompositionImprovement) {
  // ∆ = {A→B, C→D}: plain 2·mlc would be 4, but the components each have
  // mlc 1, so the decomposed bound is 2 (Theorem 4.1 refinement).
  auto bound = MlcApproxRatioBound(DeltaTwoDisjoint().fds);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, 2.0);
}

TEST(CoversTest, RatioBoundsOnTrivialSets) {
  EXPECT_DOUBLE_EQ(*MlcApproxRatioBound(FdSet()), 1.0);
  EXPECT_DOUBLE_EQ(*KlApproxRatioBound(FdSet()), 1.0);
}

}  // namespace
}  // namespace fdrepair
