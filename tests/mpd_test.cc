// Tests for the Most Probable Database reduction (§3.4, Theorem 3.10):
// agreement with brute force, certain-tuple handling, the p <= 0.5 rule,
// and the Comment 3.11 case ∆A↔B→C.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "mpd/mpd.h"
#include "storage/consistency.h"
#include "workloads/example_fdsets.h"

namespace fdrepair {
namespace {

TEST(MpdTest, ValidatesProbabilities) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  Table table(parsed.schema);
  table.AddTuple({"a", "b", "c"}, 2.0);  // > 1: not a probability
  EXPECT_FALSE(MostProbableDatabase(parsed.fds, table).ok());
}

TEST(MpdTest, LowProbabilityTuplesDropped) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"}, 0.9);
  table.AddTuple({"a", "y"}, 0.4);  // p <= 0.5: never kept
  auto result = MostProbableDatabase(parsed.fds, table);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->feasible);
  ASSERT_EQ(result->database.num_tuples(), 1);
  EXPECT_EQ(result->database.ValueText(0, 1), "x");
}

TEST(MpdTest, CertainTuplesAlwaysKept) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"}, 1.0);   // certain
  table.AddTuple({"a", "y"}, 0.99);  // conflicting but uncertain
  auto result = MostProbableDatabase(parsed.fds, table);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->database.num_tuples(), 1);
  EXPECT_EQ(result->database.ValueText(0, 1), "x");
}

TEST(MpdTest, ConflictingCertainTuplesInfeasible) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"}, 1.0);
  table.AddTuple({"a", "y"}, 1.0);
  auto result = MostProbableDatabase(parsed.fds, table);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->feasible);
  EXPECT_EQ(result->database.num_tuples(), 0);
  EXPECT_TRUE(std::isinf(result->log_probability));
}

TEST(MpdTest, SubsetLogProbabilityMatchesFormula) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"}, 0.8);
  table.AddTuple({"b", "y"}, 0.6);
  // Keep row 0 only: log(0.8) + log(0.4).
  EXPECT_NEAR(SubsetLogProbability(table, {0}),
              std::log(0.8) + std::log(0.4), 1e-12);
  EXPECT_NEAR(SubsetLogProbability(table, {0, 1}),
              std::log(0.8) + std::log(0.6), 1e-12);
}

// Theorem 3.10 in action: the reduction matches exhaustive search across
// tractable and (small) hard FD sets.
class MpdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MpdPropertyTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    if (named.parsed.schema.arity() > 5) continue;
    for (int trial = 0; trial < 3; ++trial) {
      Table table(named.parsed.schema);
      int n = 4 + static_cast<int>(rng.UniformUint64(4));
      for (int i = 0; i < n; ++i) {
        std::vector<std::string> values;
        for (int a = 0; a < named.parsed.schema.arity(); ++a) {
          values.push_back("v" + std::to_string(rng.UniformUint64(2)));
        }
        // Mix of certain, contended and discardable probabilities.
        double p;
        switch (rng.UniformUint64(4)) {
          case 0:
            p = 1.0;
            break;
          case 1:
            p = 0.3;
            break;
          default:
            p = rng.UniformDouble(0.55, 0.95);
        }
        table.AddTuple(values, p);
      }
      auto fast = MostProbableDatabase(named.parsed.fds, table);
      ASSERT_TRUE(fast.ok()) << named.name << ": " << fast.status();
      auto slow = MostProbableDatabaseBruteForce(named.parsed.fds, table);
      ASSERT_TRUE(slow.ok()) << named.name;
      if (!fast->feasible) {
        EXPECT_TRUE(std::isinf(slow->log_probability)) << named.name;
        continue;
      }
      EXPECT_TRUE(Satisfies(fast->database, named.parsed.fds)) << named.name;
      EXPECT_NEAR(fast->log_probability, slow->log_probability, 1e-9)
          << named.name << " trial " << trial << "\n" << table.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpdPropertyTest,
                         ::testing::Values(1111, 2222, 3333));

// Noisy-FD extension: soft MPD agrees with exhaustive search, and with all
// FDs hard it degenerates to the Theorem 3.10 reduction exactly.
class SoftMpdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoftMpdPropertyTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  for (const NamedFdSet& named : AllNamedFdSets()) {
    if (named.parsed.schema.arity() > 5) continue;
    // Soften every other FD; keep the rest hard.
    std::vector<double> weights;
    for (int i = 0; i < named.parsed.fds.size(); ++i) {
      weights.push_back(i % 2 == 0 ? 0.6 + 0.3 * i : kHardFdWeight);
    }
    auto weighted = named.parsed.fds.WithWeights(weights);
    ASSERT_TRUE(weighted.ok()) << named.name;
    for (int trial = 0; trial < 2; ++trial) {
      Table table(named.parsed.schema);
      int n = 4 + static_cast<int>(rng.UniformUint64(4));
      for (int i = 0; i < n; ++i) {
        std::vector<std::string> values;
        for (int a = 0; a < named.parsed.schema.arity(); ++a) {
          values.push_back("v" + std::to_string(rng.UniformUint64(2)));
        }
        double p;
        switch (rng.UniformUint64(4)) {
          case 0:
            p = 1.0;
            break;
          case 1:
            p = 0.3;
            break;
          default:
            p = rng.UniformDouble(0.55, 0.95);
        }
        table.AddTuple(values, p);
      }
      auto fast = MostProbableDatabaseSoft(*weighted, table);
      ASSERT_TRUE(fast.ok()) << named.name << ": " << fast.status();
      auto slow = MostProbableDatabaseSoftBruteForce(*weighted, table);
      ASSERT_TRUE(slow.ok()) << named.name;
      if (!fast->feasible) {
        EXPECT_TRUE(std::isinf(slow->log_probability)) << named.name;
        continue;
      }
      EXPECT_TRUE(Satisfies(fast->database, weighted->HardPart()))
          << named.name;
      EXPECT_NEAR(fast->log_probability, slow->log_probability, 1e-9)
          << named.name << " trial " << trial << "\n" << table.ToString();
    }
  }
}

TEST_P(SoftMpdPropertyTest, AllHardSoftMpdMatchesHardMpd) {
  Rng rng(GetParam() + 1);
  for (const NamedFdSet& named : AllNamedFdSets()) {
    if (named.parsed.schema.arity() > 5) continue;
    Table table(named.parsed.schema);
    for (int i = 0; i < 6; ++i) {
      std::vector<std::string> values;
      for (int a = 0; a < named.parsed.schema.arity(); ++a) {
        values.push_back("v" + std::to_string(rng.UniformUint64(2)));
      }
      table.AddTuple(values, rng.UniformDouble(0.55, 0.95));
    }
    auto hard = MostProbableDatabase(named.parsed.fds, table);
    auto soft = MostProbableDatabaseSoft(named.parsed.fds, table);
    ASSERT_TRUE(hard.ok() && soft.ok()) << named.name;
    EXPECT_EQ(soft->feasible, hard->feasible) << named.name;
    EXPECT_NEAR(soft->log_probability, hard->log_probability, 1e-9)
        << named.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftMpdPropertyTest,
                         ::testing::Values(7171, 8282));

TEST(SoftMpdTest, PenalizedLogProbabilityMatchesFormula) {
  ParsedFdSet parsed = ParseFdSetInferSchemaOrDie("A -> B @0.5");
  Table table(parsed.schema);
  table.AddTuple({"a", "x"}, 0.8);
  table.AddTuple({"a", "y"}, 0.6);  // violates A -> B with row 0 when kept
  EXPECT_NEAR(SoftSubsetLogProbability(parsed.fds, table, {0, 1}),
              std::log(0.8) + std::log(0.6) - 0.5, 1e-12);
  EXPECT_NEAR(SoftSubsetLogProbability(parsed.fds, table, {0}),
              std::log(0.8) + std::log(0.4), 1e-12);
}

TEST(SoftMpdTest, CertainTuplesMaySoftConflictButNeverHardConflict) {
  ParsedFdSet soft_parsed = ParseFdSetInferSchemaOrDie("A -> B @0.25");
  Table table(soft_parsed.schema);
  table.AddTuple({"a", "x"}, 1.0);
  table.AddTuple({"a", "y"}, 1.0);
  // A soft conflict between certain tuples: both stay, penalty paid.
  auto soft = MostProbableDatabaseSoft(soft_parsed.fds, table);
  ASSERT_TRUE(soft.ok()) << soft.status();
  EXPECT_TRUE(soft->feasible);
  EXPECT_EQ(soft->database.num_tuples(), 2);
  EXPECT_NEAR(soft->log_probability, -0.25, 1e-12);
  // The same conflict under a hard FD is infeasible.
  ParsedFdSet hard_parsed = ParseFdSetInferSchemaOrDie("A -> B");
  auto hard = MostProbableDatabaseSoft(hard_parsed.fds, table);
  ASSERT_TRUE(hard.ok());
  EXPECT_FALSE(hard->feasible);
}

// Comment 3.11: ∆A↔B→C is on the tractable side of our dichotomy, so MPD
// for it runs in polynomial time (exact OptSRepair route, no fallback).
TEST(MpdTest, Comment311KeyCycleTractable) {
  ParsedFdSet parsed = DeltaAKeyBToC();
  Rng rng(606);
  Table table(parsed.schema);
  for (int i = 0; i < 40; ++i) {
    table.AddTuple({"a" + std::to_string(rng.UniformUint64(4)),
                    "b" + std::to_string(rng.UniformUint64(4)),
                    "c" + std::to_string(rng.UniformUint64(2))},
                   rng.UniformDouble(0.55, 0.95));
  }
  MpdOptions options;
  options.strategy = SRepairStrategy::kExactOnly;  // must not need BnB
  auto result = MostProbableDatabase(parsed.fds, table, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Satisfies(result->database, parsed.fds));
}

}  // namespace
}  // namespace fdrepair
