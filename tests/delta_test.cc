// Incremental repair under mutation: TableDelta chain hashes and
// DeltaBuilder collapse semantics, Table::EraseRow invariants,
// BaseBlockIndex clean/dirty classification, plan capture + dirty-block
// splicing in OptSRepair, and the end-to-end property that
// RepairService::ApplyDelta is bit-identical to a cold full re-plan over
// random mutation sequences, across thread counts and solver backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/fd_parser.h"
#include "common/random.h"
#include "engine/block_partitioner.h"
#include "service/repair_service.h"
#include "srepair/opt_srepair.h"
#include "srepair/planner.h"
#include "srepair/solver_backend.h"
#include "storage/table.h"
#include "storage/table_delta.h"
#include "storage/table_hash.h"
#include "storage/table_view.h"
#include "workloads/example_fdsets.h"
#include "workloads/generators.h"

namespace fdrepair {
namespace {

/// A deep copy with its own Schema and ValuePool: only *content* matches,
/// which is exactly what a cold request for the mutated state looks like.
Table CopyContent(const Table& src) {
  std::vector<std::string> attrs;
  for (int c = 0; c < src.schema().arity(); ++c) {
    attrs.push_back(src.schema().AttributeName(c));
  }
  Table out(Schema::MakeOrDie("Copy", attrs));
  for (int row = 0; row < src.num_tuples(); ++row) {
    std::vector<std::string> values;
    for (int c = 0; c < src.schema().arity(); ++c) {
      values.push_back(src.ValueText(row, c));
    }
    EXPECT_TRUE(out.AddTupleWithId(src.id(row), values, src.weight(row)).ok());
  }
  return out;
}

RepairRequest Request(RepairMode mode, const FdSet& fds, const Table* table) {
  RepairRequest request;
  request.mode = mode;
  request.fds = fds;
  request.table = table;
  return request;
}

void ExpectSameRepair(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  for (int row = 0; row < a.num_tuples(); ++row) {
    EXPECT_EQ(a.id(row), b.id(row)) << row;
    EXPECT_EQ(a.weight(row), b.weight(row)) << row;
    for (int c = 0; c < a.schema().arity(); ++c) {
      EXPECT_EQ(a.ValueText(row, c), b.ValueText(row, c))
          << "row " << row << " col " << c;
    }
  }
}

Table SmallTable(int n) {
  Table table(Schema::MakeOrDie("T", {"a", "b"}));
  for (int i = 0; i < n; ++i) {
    table.AddTuple({"x" + std::to_string(i % 3), "y" + std::to_string(i)},
                   1.0 + i);
  }
  return table;
}

/// One random edit batch against the builder, in generator-style domains.
/// Returns after at least one edit (so the emitted delta is never empty).
void RandomBatch(DeltaBuilder* builder, int updates, int inserts, int erases,
                 int domain, Rng* rng) {
  const int arity = builder->table().schema().arity();
  auto value = [&](Rng* r) {
    return "v" + std::to_string(r->UniformInt(0, domain - 1));
  };
  for (int u = 0; u < updates && builder->table().num_tuples() > 0; ++u) {
    int row = static_cast<int>(rng->UniformIndex(
        static_cast<size_t>(builder->table().num_tuples())));
    TupleId id = builder->table().id(row);
    AttrId attr = static_cast<AttrId>(rng->UniformIndex(arity));
    ASSERT_TRUE(builder->Update(id, attr, value(rng)).ok());
  }
  for (int i = 0; i < inserts; ++i) {
    std::vector<std::string> values;
    for (int c = 0; c < arity; ++c) values.push_back(value(rng));
    builder->Insert(values, 1.0 + rng->UniformInt(0, 3));
  }
  for (int e = 0; e < erases && builder->table().num_tuples() > 1; ++e) {
    int row = static_cast<int>(rng->UniformIndex(
        static_cast<size_t>(builder->table().num_tuples())));
    ASSERT_TRUE(builder->Erase(builder->table().id(row)).ok());
  }
}

// --------------------------------------------------------------------------
// TableDelta + DeltaBuilder
// --------------------------------------------------------------------------

TEST(TableDeltaTest, BuilderChainsOffBaseContentHash) {
  Table base = SmallTable(6);
  DeltaBuilder builder(base);
  ASSERT_TRUE(builder.Update(2, 1, "rewritten").ok());
  TableDelta delta = builder.Finish();

  EXPECT_EQ(delta.base_hash, TableContentHash(base));
  EXPECT_EQ(delta.inserted, std::vector<TupleId>{});
  EXPECT_EQ(delta.updated, std::vector<TupleId>{2});
  EXPECT_EQ(delta.deleted, std::vector<TupleId>{});

  auto hash = DeltaChainHash(delta, builder.table());
  ASSERT_TRUE(hash.ok()) << hash.status();
  EXPECT_EQ(*hash, delta.result_hash);
  EXPECT_TRUE(ValidateDelta(delta, builder.table()).ok());
}

TEST(TableDeltaTest, ChainComposesAndDiffersFromContentHash) {
  Table base = SmallTable(5);
  DeltaBuilder builder(base);
  ASSERT_TRUE(builder.Update(1, 0, "m0").ok());
  TableDelta first = builder.Finish();
  builder.Insert({"x9", "y9"}, 2.0);
  TableDelta second = builder.Finish();

  EXPECT_EQ(second.base_hash, first.result_hash);
  EXPECT_NE(first.result_hash, second.result_hash);
  // Chain identity is deliberately distinct from the mutated state's
  // content identity (delta-keyed and cold-keyed entries never alias).
  EXPECT_NE(second.result_hash, TableContentHash(builder.table()));
  EXPECT_TRUE(ValidateDelta(second, builder.table()).ok());
}

TEST(TableDeltaTest, EditsCollapseToNetEffect) {
  Table base = SmallTable(4);

  {  // insert + update stays an insert.
    DeltaBuilder builder(base);
    TupleId id = builder.Insert({"x7", "y7"});
    ASSERT_TRUE(builder.Update(id, 0, "x8").ok());
    TableDelta delta = builder.Finish();
    EXPECT_EQ(delta.inserted, std::vector<TupleId>{id});
    EXPECT_TRUE(delta.updated.empty());
  }
  {  // insert + erase nets out to nothing.
    DeltaBuilder builder(base);
    TupleId id = builder.Insert({"x7", "y7"});
    ASSERT_TRUE(builder.Erase(id).ok());
    TableDelta delta = builder.Finish();
    EXPECT_TRUE(delta.empty());
    // An empty delta still advances nothing: its chain hash is a pure
    // function of the base hash, and the state really is the base state.
    EXPECT_TRUE(ValidateDelta(delta, builder.table()).ok());
  }
  {  // update + erase is an erase.
    DeltaBuilder builder(base);
    ASSERT_TRUE(builder.Update(1, 1, "gone").ok());
    ASSERT_TRUE(builder.Erase(1).ok());
    TableDelta delta = builder.Finish();
    EXPECT_TRUE(delta.updated.empty());
    EXPECT_EQ(delta.deleted, std::vector<TupleId>{1});
    EXPECT_TRUE(ValidateDelta(delta, builder.table()).ok());
  }
}

TEST(TableDeltaTest, HashBindsContentAndSectionFraming) {
  Table base = SmallTable(4);

  // Same edit shape, different new content: different chains.
  DeltaBuilder a(base);
  ASSERT_TRUE(a.Update(1, 0, "left").ok());
  DeltaBuilder b(base);
  ASSERT_TRUE(b.Update(1, 0, "right").ok());
  EXPECT_NE(a.Finish().result_hash, b.Finish().result_hash);

  // The same row reported as inserted vs updated must hash differently,
  // even though the mixed row bytes are identical (section framing).
  Table mutated = SmallTable(4);
  TableDelta as_inserted;
  as_inserted.base_hash = 42;
  as_inserted.inserted = {2};
  TableDelta as_updated;
  as_updated.base_hash = 42;
  as_updated.updated = {2};
  auto ih = DeltaChainHash(as_inserted, mutated);
  auto uh = DeltaChainHash(as_updated, mutated);
  ASSERT_TRUE(ih.ok() && uh.ok());
  EXPECT_NE(*ih, *uh);
}

TEST(TableDeltaTest, ValidationRejectsMalformedDeltas) {
  Table mutated = SmallTable(4);

  TableDelta unsorted;
  unsorted.updated = {3, 1};
  EXPECT_EQ(DeltaChainHash(unsorted, mutated).status().code(),
            StatusCode::kInvalidArgument);

  TableDelta overlapping;
  overlapping.inserted = {1};
  overlapping.updated = {1};
  EXPECT_EQ(ValidateDelta(overlapping, mutated).code(),
            StatusCode::kInvalidArgument);

  TableDelta still_present;
  still_present.deleted = {2};  // id 2 exists in `mutated`
  EXPECT_EQ(ValidateDelta(still_present, mutated).code(),
            StatusCode::kInvalidArgument);

  TableDelta unknown;
  unknown.updated = {99};
  EXPECT_EQ(DeltaChainHash(unknown, mutated).status().code(),
            StatusCode::kInvalidArgument);

  DeltaBuilder builder(mutated);
  ASSERT_TRUE(builder.Update(1, 0, "zz").ok());
  TableDelta stale = builder.Finish();
  stale.result_hash ^= 1;  // corrupt the chain
  EXPECT_EQ(ValidateDelta(stale, builder.table()).code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Table::EraseRow / EraseTuple
// --------------------------------------------------------------------------

TEST(TableEraseTest, EraseRowPreservesSurvivorOrderAndIndex) {
  Table table = SmallTable(5);  // ids 1..5 in row order
  table.EraseRow(1);            // removes the tuple with id 2
  ASSERT_EQ(table.num_tuples(), 4);
  const std::vector<TupleId> want = {1, 3, 4, 5};
  for (int row = 0; row < table.num_tuples(); ++row) {
    EXPECT_EQ(table.id(row), want[row]) << row;
    auto back = table.RowOf(table.id(row));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, row);
  }
  EXPECT_FALSE(table.RowOf(2).ok());
  EXPECT_EQ(table.EraseTuple(2).code(), StatusCode::kNotFound);
  EXPECT_TRUE(table.EraseTuple(4).ok());
  EXPECT_FALSE(table.RowOf(4).ok());
  // Erased identifiers are never recycled: the next insert gets a fresh id.
  EXPECT_EQ(table.AddTuple({"x0", "fresh"}, 1.0), 6);
}

// --------------------------------------------------------------------------
// BaseBlockIndex
// --------------------------------------------------------------------------

TEST(BaseBlockIndexTest, MatchesOnlyIdenticalSequences) {
  BaseBlockIndex index;
  const std::vector<TupleId> b0 = {1, 2, 3};
  const std::vector<TupleId> b1 = {4};
  const std::vector<TupleId> b2 = {5, 6};
  index.Add(b0);
  index.Add(b1);
  index.Add(b2);
  ASSERT_EQ(index.num_blocks(), 3);

  const TupleId seq0[] = {1, 2, 3};
  const TupleId seq1[] = {4};
  const TupleId seq2[] = {5, 6};
  const TupleId grown[] = {5, 6, 7};
  const TupleId shrunk[] = {1, 3};
  const TupleId reordered[] = {1, 3, 2};
  const TupleId fresh[] = {7, 8};

  EXPECT_EQ(index.Match(seq0, 3), 0);
  EXPECT_EQ(index.Match(seq1, 1), 1);
  EXPECT_EQ(index.Match(seq2, 2), 2);
  EXPECT_EQ(index.Match(grown, 3), -1);      // size mismatch
  EXPECT_EQ(index.Match(shrunk, 2), -1);     // sequence mismatch
  EXPECT_EQ(index.Match(reordered, 3), -1);  // order matters
  EXPECT_EQ(index.Match(fresh, 2), -1);      // unknown first id
}

// --------------------------------------------------------------------------
// OptSRepair capture + splice
// --------------------------------------------------------------------------

TEST(PlanCaptureTest, CaptureOverloadIsBitIdenticalAndCoversTheTable) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 240, 5);
  const TableView view(table);

  auto plain = OptSRepairRows(parsed.fds, view);
  ASSERT_TRUE(plain.ok()) << plain.status();

  SRepairPlanCache plan;
  auto captured = OptSRepairRows(parsed.fds, view, OptSRepairRowsOptions(), &plan);
  ASSERT_TRUE(captured.ok()) << captured.status();
  EXPECT_EQ(*plain, *captured);

  ASSERT_TRUE(plan.spliceable);
  EXPECT_EQ(plan.top_kind, SimplificationKind::kCommonLhs);
  // The top-level blocks partition the table; the kept positions (each a
  // valid index into its block's id sequence) union to the repair.
  size_t members = 0, kept = 0;
  for (const auto& block : plan.blocks) {
    members += block->ids.size();
    kept += block->kept_pos.size();
    for (int p : block->kept_pos) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, static_cast<int>(block->ids.size()));
    }
  }
  EXPECT_EQ(members, static_cast<size_t>(table.num_tuples()));
  EXPECT_EQ(kept, captured->size());
}

TEST(PlanCaptureTest, SpliceIsBitIdenticalAcrossChainedMutations) {
  ParsedFdSet parsed = OfficeFds();
  Table base = ScalingFamilyTable(parsed, 400, 9);

  SRepairPlanCache plan;
  ASSERT_TRUE(OptSRepairRows(parsed.fds, TableView(base), OptSRepairRowsOptions(), &plan).ok());
  ASSERT_TRUE(plan.spliceable);

  Rng rng(77);
  DeltaBuilder builder(base);
  for (int step = 0; step < 4; ++step) {
    RandomBatch(&builder, /*updates=*/3, /*inserts=*/1, /*erases=*/1,
                /*domain=*/25, &rng);
    TableDelta delta = builder.Finish();
    const TableView view(builder.table());

    // Refresh the plan in place (capture aliases the base — the documented
    // chained-delta calling convention).
    SRepairSpliceStats stats;
    OptSRepairRowsOptions splice_options;
    splice_options.delta_base = &plan;
    splice_options.delta_updated_ids = &delta.updated;
    splice_options.splice_stats = &stats;
    auto spliced = OptSRepairRows(parsed.fds, view, splice_options, &plan);
    ASSERT_TRUE(spliced.ok()) << spliced.status();
    auto cold = OptSRepairRows(parsed.fds, view);
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(*spliced, *cold) << "mutation step " << step;

    EXPECT_GT(stats.blocks_total, 0);
    EXPECT_EQ(stats.blocks_clean + stats.blocks_dirty, stats.blocks_total);
    // A 5-edit batch against 25 facility blocks must leave most blocks
    // untouched — the whole point of the splice.
    EXPECT_GT(stats.blocks_clean, stats.blocks_dirty) << "step " << step;
    ASSERT_TRUE(plan.spliceable);
  }
}

TEST(PlanCaptureTest, ConsensusAndMarriageTopKindsSplice) {
  struct Case {
    ParsedFdSet parsed;
    SimplificationKind kind;
  };
  std::vector<Case> cases;
  cases.push_back({ParseFdSetInferSchemaOrDie("{} -> A; B -> C"),
                   SimplificationKind::kConsensus});
  cases.push_back({Example31Ssn(), SimplificationKind::kLhsMarriage});

  for (const Case& c : cases) {
    Rng rng(13);
    RandomTableOptions options;
    options.num_tuples = 120;
    options.domain_size = 3;
    options.heavy_fraction = 0.3;
    Table base = RandomTable(c.parsed.schema, options, &rng);

    SRepairPlanCache plan;
    ASSERT_TRUE(OptSRepairRows(c.parsed.fds, TableView(base), OptSRepairRowsOptions(), &plan).ok());
    ASSERT_TRUE(plan.spliceable);
    EXPECT_EQ(plan.top_kind, c.kind);

    DeltaBuilder builder(base);
    RandomBatch(&builder, /*updates=*/4, /*inserts=*/1, /*erases=*/1,
                /*domain=*/3, &rng);
    TableDelta delta = builder.Finish();
    const TableView view(builder.table());

    SRepairSpliceStats stats;
    OptSRepairRowsOptions splice_options;
    splice_options.delta_base = &plan;
    splice_options.delta_updated_ids = &delta.updated;
    splice_options.splice_stats = &stats;
    auto spliced = OptSRepairRows(c.parsed.fds, view, splice_options);
    ASSERT_TRUE(spliced.ok()) << spliced.status();
    auto cold = OptSRepairRows(c.parsed.fds, view);
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(*spliced, *cold);
    EXPECT_GT(stats.blocks_total, 0);
  }
}

TEST(PlanCaptureTest, NonSpliceableBasesFailPrecondition) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 64, 3);

  SRepairPlanCache never_captured;  // spliceable defaults to false
  OptSRepairRowsOptions never_options;
  never_options.delta_base = &never_captured;
  EXPECT_EQ(
      OptSRepairRows(parsed.fds, TableView(table), never_options)
          .status()
          .code(),
      StatusCode::kFailedPrecondition);

  // A single-tuple table cannot decompose into blocks either.
  Table tiny(parsed.schema);
  tiny.AddTuple({"f", "r", "fl", "c"}, 1.0);
  SRepairPlanCache plan;
  ASSERT_TRUE(OptSRepairRows(parsed.fds, TableView(table), OptSRepairRowsOptions(), &plan).ok());
  OptSRepairRowsOptions tiny_options;
  tiny_options.delta_base = &plan;
  EXPECT_EQ(OptSRepairRows(parsed.fds, TableView(tiny), tiny_options)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------------------
// RepairService::ApplyDelta
// --------------------------------------------------------------------------

TEST(ServiceDeltaTest, ApplyDeltaValidatesItsDeltaRequest) {
  ParsedFdSet parsed = OfficeFds();
  Table table = ScalingFamilyTable(parsed, 32, 2);
  RepairService service;

  RepairRequest missing = Request(RepairMode::kSubset, parsed.fds, &table);
  EXPECT_EQ(service.ApplyDelta(missing).status().code(),
            StatusCode::kInvalidArgument);
  RepairRequest missing_update =
      Request(RepairMode::kUpdate, parsed.fds, &table);
  EXPECT_EQ(service.ApplyDelta(missing_update).status().code(),
            StatusCode::kInvalidArgument);

  // Update-mode deltas are first-class: a valid delta with no cached base
  // plan is served as a full re-plan, not rejected.
  DeltaBuilder builder(table);
  const TupleId victim = table.id(0);
  ASSERT_TRUE(builder.Update(victim, 0, "zz").ok());
  TableDelta delta = builder.Finish();
  RepairRequest update_mode =
      Request(RepairMode::kUpdate, parsed.fds, &builder.table());
  update_mode.delta = &delta;
  ASSERT_TRUE(service.ApplyDelta(update_mode).ok());
  EXPECT_EQ(service.stats().udelta_requests, 1u);
  EXPECT_EQ(service.stats().udelta_full_replans, 1u);

  // A stale delta (a listed row mutated past it) is rejected, not
  // mis-served. Staleness of *unlisted* rows is intentionally not caught —
  // that is the O(|delta|) validation tradeoff.
  RepairRequest stale =
      Request(RepairMode::kSubset, parsed.fds, &builder.table());
  stale.delta = &delta;
  ASSERT_TRUE(builder.Update(victim, 1, "later").ok());
  EXPECT_EQ(service.ApplyDelta(stale).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServiceDeltaTest, SpliceServesBitIdenticalAndCountsBlocks) {
  ParsedFdSet parsed = OfficeFds();
  Table base = ScalingFamilyTable(parsed, 600, 11);
  RepairService service;

  RepairRequest cold = Request(RepairMode::kSubset, parsed.fds, &base);
  ASSERT_TRUE(service.Serve(cold).ok());

  Rng rng(3);
  DeltaBuilder builder(base);
  RandomBatch(&builder, /*updates=*/3, /*inserts=*/0, /*erases=*/0,
              /*domain=*/37, &rng);
  TableDelta delta = builder.Finish();

  RepairRequest incremental =
      Request(RepairMode::kSubset, parsed.fds, &builder.table());
  incremental.delta = &delta;
  auto served = service.ApplyDelta(incremental);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_FALSE(served->cache_hit);

  // Bit-identical to a cold full re-plan of the mutated state.
  Table copy = CopyContent(builder.table());
  RepairService fresh;
  auto reference =
      fresh.Serve(Request(RepairMode::kSubset, parsed.fds, &copy));
  ASSERT_TRUE(reference.ok()) << reference.status();
  ExpectSameRepair(reference->repair, served->repair);
  EXPECT_EQ(reference->distance, served->distance);
  EXPECT_EQ(reference->optimal, served->optimal);

  RepairServiceStats stats = service.stats();
  EXPECT_EQ(stats.delta_requests, 1u);
  EXPECT_EQ(stats.delta_splices, 1u);
  EXPECT_EQ(stats.delta_full_replans, 0u);
  EXPECT_GT(stats.delta_blocks_clean, 0u);
  EXPECT_GT(stats.delta_blocks_dirty, 0u);

  // The delta-keyed entry is now cached: re-serving the same request is a
  // plain O(result) hit.
  auto replay = service.ApplyDelta(incremental);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->cache_hit);
  ExpectSameRepair(served->repair, replay->repair);
  EXPECT_EQ(service.stats().hits, 1u);
}

TEST(ServiceDeltaTest, MissingBasePlanFallsBackToFullReplan) {
  ParsedFdSet parsed = OfficeFds();
  Table base = ScalingFamilyTable(parsed, 300, 17);
  RepairService service;
  ASSERT_TRUE(
      service.Serve(Request(RepairMode::kSubset, parsed.fds, &base)).ok());
  service.InvalidateCache();  // the pre-mutation entry (and its plan) is gone

  DeltaBuilder builder(base);
  ASSERT_TRUE(builder.Update(base.id(0), 0, "moved").ok());
  TableDelta delta = builder.Finish();
  RepairRequest incremental =
      Request(RepairMode::kSubset, parsed.fds, &builder.table());
  incremental.delta = &delta;
  auto served = service.ApplyDelta(incremental);
  ASSERT_TRUE(served.ok()) << served.status();

  Table copy = CopyContent(builder.table());
  RepairService fresh;
  auto reference =
      fresh.Serve(Request(RepairMode::kSubset, parsed.fds, &copy));
  ASSERT_TRUE(reference.ok()) << reference.status();
  ExpectSameRepair(reference->repair, served->repair);

  RepairServiceStats stats = service.stats();
  EXPECT_EQ(stats.delta_requests, 1u);
  EXPECT_EQ(stats.delta_splices, 0u);
  EXPECT_EQ(stats.delta_full_replans, 1u);
}

/// The headline property: over random mutation sequences, ApplyDelta is
/// bit-identical to a cold full re-plan of the mutated state — for every
/// engine thread count, with the repair itself also identical across
/// thread counts.
TEST(ServiceDeltaTest, PropertyRandomMutationSequencesAcrossThreadCounts) {
  ParsedFdSet parsed = OfficeFds();
  Table base = ScalingFamilyTable(parsed, 500, 23);
  constexpr int kRounds = 4;

  std::vector<Table> witness;  // per-round repair from the 1-thread service
  for (int threads : {1, 2, 8}) {
    RepairServiceOptions options;
    options.engine.threads = threads;
    RepairService service(options);
    ASSERT_TRUE(
        service.Serve(Request(RepairMode::kSubset, parsed.fds, &base)).ok());

    Rng rng(101);  // same seed per thread count: identical mutation chains
    DeltaBuilder builder(base);
    for (int round = 0; round < kRounds; ++round) {
      RandomBatch(&builder, /*updates=*/6, /*inserts=*/2, /*erases=*/2,
                  /*domain=*/31, &rng);
      TableDelta delta = builder.Finish();

      RepairRequest incremental =
          Request(RepairMode::kSubset, parsed.fds, &builder.table());
      incremental.delta = &delta;
      auto served = service.ApplyDelta(incremental);
      ASSERT_TRUE(served.ok())
          << served.status() << " threads " << threads << " round " << round;

      Table copy = CopyContent(builder.table());
      RepairService fresh;
      auto reference =
          fresh.Serve(Request(RepairMode::kSubset, parsed.fds, &copy));
      ASSERT_TRUE(reference.ok()) << reference.status();
      ExpectSameRepair(reference->repair, served->repair);
      EXPECT_EQ(reference->distance, served->distance);

      if (threads == 1) {
        witness.push_back(CopyContent(served->repair));
      } else {
        ExpectSameRepair(witness[round], served->repair);
      }
    }
    RepairServiceStats stats = service.stats();
    EXPECT_EQ(stats.delta_requests, static_cast<uint64_t>(kRounds));
    EXPECT_EQ(stats.delta_splices + stats.delta_full_replans,
              static_cast<uint64_t>(kRounds));
    // Chained small batches against a warm service should mostly splice.
    EXPECT_GT(stats.delta_splices, 0u) << "threads " << threads;
  }
}

/// Update-mode twin of the headline property: ApplyDelta on kUpdate
/// requests is bit-identical to a cold update re-plan of the mutated
/// state — for every engine thread count. The reference service owns a
/// private ValuePool, so this also exercises the deterministic
/// fresh-constant names: "⊥t<id>.<attr>" depends only on (TupleId, attr),
/// which CopyContent preserves, so both pools spell ⊥ cells identically.
TEST(ServiceDeltaTest, PropertyUpdateModeMutationSequencesAcrossThreadCounts) {
  ParsedFdSet parsed = OfficeFds();
  Table base = ScalingFamilyTable(parsed, 500, 23);
  constexpr int kRounds = 4;

  std::vector<Table> witness;  // per-round repair from the 1-thread service
  for (int threads : {1, 2, 8}) {
    RepairServiceOptions options;
    options.engine.threads = threads;
    RepairService service(options);
    ASSERT_TRUE(
        service.Serve(Request(RepairMode::kUpdate, parsed.fds, &base)).ok());

    Rng rng(101);  // same seed per thread count: identical mutation chains
    DeltaBuilder builder(base);
    for (int round = 0; round < kRounds; ++round) {
      RandomBatch(&builder, /*updates=*/6, /*inserts=*/2, /*erases=*/2,
                  /*domain=*/31, &rng);
      TableDelta delta = builder.Finish();

      RepairRequest incremental =
          Request(RepairMode::kUpdate, parsed.fds, &builder.table());
      incremental.delta = &delta;
      auto served = service.ApplyDelta(incremental);
      ASSERT_TRUE(served.ok())
          << served.status() << " threads " << threads << " round " << round;

      Table copy = CopyContent(builder.table());
      RepairService fresh;
      auto reference =
          fresh.Serve(Request(RepairMode::kUpdate, parsed.fds, &copy));
      ASSERT_TRUE(reference.ok()) << reference.status();
      ExpectSameRepair(reference->repair, served->repair);
      EXPECT_EQ(reference->distance, served->distance);

      if (threads == 1) {
        witness.push_back(CopyContent(served->repair));
      } else {
        ExpectSameRepair(witness[round], served->repair);
      }
    }
    RepairServiceStats stats = service.stats();
    EXPECT_EQ(stats.udelta_requests, static_cast<uint64_t>(kRounds));
    EXPECT_EQ(stats.udelta_splices + stats.udelta_full_replans,
              static_cast<uint64_t>(kRounds));
    // OfficeFds routes through the common-lhs exact path, which captures a
    // spliceable U-plan: chained batches against a warm service must splice.
    EXPECT_GT(stats.udelta_splices, 0u) << "threads " << threads;
  }
}

/// Solver backends compose with the delta path: explicit-backend requests
/// capture no plan (hard-route results are not spliceable), so a delta
/// request keyed to them re-plans in full — and must still be
/// bit-identical to a cold request for the mutated state.
TEST(ServiceDeltaTest, PropertyHoldsForEveryRegisteredSolverBackend) {
  ParsedFdSet parsed = OfficeFds();
  Table base = ScalingFamilyTable(parsed, 30, 29);

  for (const SolverBackend* backend : AllSolverBackends()) {
    RepairService service;
    RepairRequest cold = Request(RepairMode::kSubset, parsed.fds, &base);
    cold.backend = backend->name();
    ASSERT_TRUE(service.Serve(cold).ok()) << backend->name();

    Rng rng(7);
    DeltaBuilder builder(base);
    RandomBatch(&builder, /*updates=*/2, /*inserts=*/1, /*erases=*/1,
                /*domain=*/4, &rng);
    TableDelta delta = builder.Finish();

    RepairRequest incremental =
        Request(RepairMode::kSubset, parsed.fds, &builder.table());
    incremental.delta = &delta;
    incremental.backend = backend->name();
    auto served = service.ApplyDelta(incremental);
    ASSERT_TRUE(served.ok()) << served.status() << " " << backend->name();
    EXPECT_EQ(served->backend, backend->name());

    Table copy = CopyContent(builder.table());
    RepairService fresh;
    RepairRequest reference_request =
        Request(RepairMode::kSubset, parsed.fds, &copy);
    reference_request.backend = backend->name();
    auto reference = fresh.Serve(reference_request);
    ASSERT_TRUE(reference.ok()) << reference.status();
    ExpectSameRepair(reference->repair, served->repair);
    EXPECT_EQ(reference->distance, served->distance);

    RepairServiceStats stats = service.stats();
    EXPECT_EQ(stats.delta_requests, 1u) << backend->name();
    EXPECT_EQ(stats.delta_splices, 0u) << backend->name();
    EXPECT_EQ(stats.delta_full_replans, 1u) << backend->name();
  }
}

}  // namespace
}  // namespace fdrepair
