// The SIMD gather kernels must be bit-identical to their scalar fallbacks
// on every input shape — including the tail lanes (n % 8 != 0), repeated
// and out-of-order row indices, and extreme ValueIds. When the host CPU
// (or the build) lacks AVX2, the forced-AVX2 run silently degrades to
// scalar, so the comparisons below stay meaningful everywhere.

#include "common/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"

namespace fdrepair {
namespace {

/// Restores the automatic dispatch decision on scope exit.
struct SimdModeGuard {
  ~SimdModeGuard() { simd::ClearForcedSimdMode(); }
};

TEST(SimdTest, ModeForcingAndNames) {
  SimdModeGuard guard;
  simd::ForceSimdMode(simd::SimdMode::kScalar);
  EXPECT_EQ(simd::ActiveSimdMode(), simd::SimdMode::kScalar);
  simd::ForceSimdMode(simd::SimdMode::kAvx2);
  if (FDREPAIR_SIMD_AVX2_KERNELS && simd::CpuSupportsAvx2()) {
    EXPECT_EQ(simd::ActiveSimdMode(), simd::SimdMode::kAvx2);
  } else {
    // An unhonorable pin degrades to scalar instead of crashing.
    EXPECT_EQ(simd::ActiveSimdMode(), simd::SimdMode::kScalar);
  }
  simd::ClearForcedSimdMode();
  EXPECT_STREQ(simd::SimdModeName(simd::SimdMode::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdModeName(simd::SimdMode::kAvx2), "avx2");
}

TEST(SimdTest, GatherWithMaxMatchesScalarOnEveryTailLength) {
  SimdModeGuard guard;
  Rng rng(7);
  const int column_size = 500;
  std::vector<int32_t> column(column_size);
  for (int32_t& v : column) {
    v = static_cast<int32_t>(rng.UniformUint64(1 << 20));
  }
  column[137] = std::numeric_limits<int32_t>::max();  // max can live anywhere
  for (int n = 0; n <= 33; ++n) {
    std::vector<int> rows(n);
    for (int& r : rows) {
      r = static_cast<int>(rng.UniformUint64(column_size));  // repeats allowed
    }
    std::vector<int32_t> scalar_out(n + 1, -99), simd_out(n + 1, -99);
    simd::ForceSimdMode(simd::SimdMode::kScalar);
    const int32_t scalar_max =
        simd::GatherWithMax(column.data(), rows.data(), n, scalar_out.data());
    simd::ForceSimdMode(simd::SimdMode::kAvx2);
    const int32_t simd_max =
        simd::GatherWithMax(column.data(), rows.data(), n, simd_out.data());
    EXPECT_EQ(scalar_max, simd_max) << "n=" << n;
    EXPECT_EQ(scalar_out, simd_out) << "n=" << n;
    for (int i = 0; i < n; ++i) EXPECT_EQ(scalar_out[i], column[rows[i]]);
    if (n == 0) {
      EXPECT_EQ(scalar_max, std::numeric_limits<int32_t>::min());
    }
  }
}

TEST(SimdTest, GatherPackPairsMatchesScalarAndKeyLayout) {
  SimdModeGuard guard;
  Rng rng(11);
  const int column_size = 300;
  std::vector<int32_t> c1(column_size), c2(column_size);
  for (int i = 0; i < column_size; ++i) {
    c1[i] = static_cast<int32_t>(rng.UniformUint64(1 << 16));
    c2[i] = static_cast<int32_t>(rng.UniformUint64(1 << 16));
  }
  for (int n : {0, 1, 7, 8, 9, 15, 16, 17, 64, 100}) {
    std::vector<int> rows(n);
    for (int& r : rows) {
      r = static_cast<int>(rng.UniformUint64(column_size));
    }
    std::vector<uint64_t> scalar_out(n, 0), simd_out(n, 0);
    simd::ForceSimdMode(simd::SimdMode::kScalar);
    simd::GatherPackPairs(c1.data(), c2.data(), rows.data(), n,
                          scalar_out.data());
    simd::ForceSimdMode(simd::SimdMode::kAvx2);
    simd::GatherPackPairs(c1.data(), c2.data(), rows.data(), n,
                          simd_out.data());
    EXPECT_EQ(scalar_out, simd_out) << "n=" << n;
    for (int i = 0; i < n; ++i) {
      const uint64_t expected =
          (static_cast<uint64_t>(static_cast<uint32_t>(c1[rows[i]])) << 32) |
          static_cast<uint32_t>(c2[rows[i]]);
      EXPECT_EQ(scalar_out[i], expected) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace fdrepair
